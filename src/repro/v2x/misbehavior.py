"""V2X misbehavior detection and credential revocation.

Authentication (E6) only proves a message came from an enrolled vehicle;
an *insider* with valid pseudonyms can still broadcast lies ("ghost
vehicle" stopped on the highway).  The deployed answer is misbehavior
detection + revocation:

- :class:`BsmPlausibilityChecker` -- receiver-local checks on accepted
  BSMs: range plausibility (a sender we hear must be within radio range),
  kinematic consistency (implied velocity between successive positions vs
  claimed speed), and teleportation detection.
- :class:`MisbehaviorAuthority` -- backend aggregation: when enough
  *distinct* reporters accuse the same pseudonym, the authority uses the
  PKI linkage map to revoke the underlying vehicle's entire credential
  set (all its pseudonyms land on the CRL).

This closes the loop the paper's security scenario opens: trust the
sender's *credential*, verify the *content*, and evict liars.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.v2x.bsm import BasicSafetyMessage
from repro.v2x.pki import PkiHierarchy


@dataclass(frozen=True)
class MisbehaviorReport:
    """One receiver's accusation against one pseudonym."""

    time: float
    reporter: str
    accused_subject: str
    accused_digest: bytes
    reason: str


class BsmPlausibilityChecker:
    """Receiver-local content plausibility over accepted BSMs.

    ``max_range``: the radio's realistic reach -- a BSM claiming a position
    far beyond it is physically implausible (we *heard* the sender).
    ``max_speed``: kinematic ceiling for implied velocities.
    ``speed_tolerance``: slack between implied and claimed speed.
    """

    def __init__(
        self,
        max_range: float = 600.0,
        max_speed: float = 70.0,
        speed_tolerance: float = 15.0,
    ) -> None:
        self.max_range = max_range
        self.max_speed = max_speed
        self.speed_tolerance = speed_tolerance
        self._tracks: Dict[str, Tuple[float, float, float, float]] = {}
        self.checked = 0
        self.flagged = 0

    def check(
        self,
        now: float,
        subject: str,
        bsm: BasicSafetyMessage,
        receiver_position: Tuple[float, float],
    ) -> Optional[str]:
        """Return a reason string if the BSM is implausible, else None."""
        self.checked += 1
        reason = self._evaluate(now, subject, bsm, receiver_position)
        self._tracks[subject] = (now, bsm.x, bsm.y, bsm.speed)
        if reason is not None:
            self.flagged += 1
        return reason

    def _evaluate(self, now, subject, bsm, receiver_position) -> Optional[str]:
        distance = math.hypot(bsm.x - receiver_position[0],
                              bsm.y - receiver_position[1])
        if distance > self.max_range:
            return f"claimed position {distance:.0f}m away, beyond radio range"
        if bsm.speed > self.max_speed:
            return f"claimed speed {bsm.speed:.0f} m/s exceeds ceiling"
        previous = self._tracks.get(subject)
        if previous is not None:
            prev_time, prev_x, prev_y, prev_speed = previous
            dt = now - prev_time
            if dt > 1e-6:
                implied = math.hypot(bsm.x - prev_x, bsm.y - prev_y) / dt
                if implied > self.max_speed:
                    return f"teleport: implied {implied:.0f} m/s between BSMs"
                if abs(implied - bsm.speed) > self.speed_tolerance:
                    return (f"inconsistent: implied {implied:.0f} m/s vs "
                            f"claimed {bsm.speed:.0f} m/s")
        return None


class MisbehaviorAuthority:
    """Backend aggregation and revocation decision.

    ``report_threshold``: distinct reporters required before revocation --
    a single malicious *reporter* must not be able to evict honest
    vehicles (the dual threat), so one accusation is never enough.
    """

    def __init__(self, pki: PkiHierarchy, report_threshold: int = 3) -> None:
        if report_threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.pki = pki
        self.report_threshold = report_threshold
        self.reports: List[MisbehaviorReport] = []
        self._reporters_by_subject: Dict[str, Set[str]] = {}
        self._digest_by_subject: Dict[str, bytes] = {}
        self.revoked_vehicles: Set[str] = set()

    def submit(self, report: MisbehaviorReport) -> Optional[str]:
        """File a report; returns the revoked vehicle id when the
        threshold trips, else None."""
        self.reports.append(report)
        reporters = self._reporters_by_subject.setdefault(
            report.accused_subject, set(),
        )
        reporters.add(report.reporter)
        self._digest_by_subject[report.accused_subject] = report.accused_digest
        if len(reporters) < self.report_threshold:
            return None
        vehicle = self.pki.linkage_map.get(report.accused_digest)
        if vehicle is None or vehicle in self.revoked_vehicles:
            return None
        self.pki.revoke_vehicle(vehicle)
        self.revoked_vehicles.add(vehicle)
        return vehicle

    def accusation_count(self, subject: str) -> int:
        return len(self._reporters_by_subject.get(subject, set()))
