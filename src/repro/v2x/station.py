"""The on-board unit (OBU): sign outgoing BSMs, verify incoming ones.

The verification side models the paper's density concern ("verify that the
V2X communication remains secure regardless of how many vehicles and RSUs
are in proximity"): each station has a bounded verification throughput
(``verify_rate`` messages/s -- the crypto accelerator budget).  Incoming
messages queue; a message that waits longer than ``queue_deadline`` is
dropped unverified.  E6 sweeps sender density against this budget.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

from repro.physical.vehicle import Vehicle
from repro.sim import Simulator, TraceRecorder
from repro.v2x.bsm import BasicSafetyMessage
from repro.v2x.channel import Radio, WirelessChannel
from repro.v2x.ieee1609 import MessageVerifier, SignedMessage, sign_payload
from repro.v2x.privacy import PseudonymManager


class ObuStation:
    """A V2X station bound to a vehicle."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        vehicle: Vehicle,
        channel: WirelessChannel,
        pseudonyms: PseudonymManager,
        verifier: MessageVerifier,
        bsm_period: float = 0.1,
        verify_rate: float = 400.0,
        queue_deadline: float = 0.1,
        trace: Optional[TraceRecorder] = None,
        real_crypto: bool = True,
    ) -> None:
        self.sim = sim
        self.name = name
        self.vehicle = vehicle
        self.pseudonyms = pseudonyms
        self.verifier = verifier
        self.bsm_period = bsm_period
        self.verify_time = 1.0 / verify_rate
        self.queue_deadline = queue_deadline
        self.real_crypto = real_crypto
        self.trace = trace if trace is not None else TraceRecorder()
        self.radio: Radio = channel.attach(name, lambda: vehicle.state.position)
        self.radio.on_receive(self._enqueue)

        self._queue: Deque[Tuple[float, SignedMessage]] = deque()
        self._verifying = False
        self._msg_count = 0
        self._broadcasting = False

        self.signed = 0
        # Optional hook invoked for every accepted BSM:
        # on_bsm(now, bsm, sender_subject, signed_message).
        self.on_bsm = None
        self.accepted: List[Tuple[float, BasicSafetyMessage, str]] = []
        self.rejects: dict = {}
        self.dropped_overload = 0
        self.verify_latencies: List[float] = []

    # ------------------------------------------------------------------
    # Transmit path
    # ------------------------------------------------------------------
    def start_broadcasting(self) -> None:
        if not self._broadcasting:
            self._broadcasting = True
            self.sim.schedule(0.0, self._broadcast_bsm)

    def stop_broadcasting(self) -> None:
        self._broadcasting = False

    def _broadcast_bsm(self) -> None:
        if not self._broadcasting:
            return
        state = self.vehicle.state
        bsm = BasicSafetyMessage(
            msg_count=self._msg_count % 128,
            x=state.x, y=state.y, speed=state.speed, heading=state.heading,
        )
        self._msg_count += 1
        message = self._sign(bsm.encode())
        self.signed += 1
        self.radio.broadcast(message)
        self.sim.schedule(self.bsm_period, self._broadcast_bsm)

    def _sign(self, payload: bytes) -> SignedMessage:
        cert, key = self.pseudonyms.current(self.sim.now)
        if self.real_crypto:
            return sign_payload(payload, "bsm", self.sim.now, cert, key)
        # Scale-mode surrogate (paired with MessageVerifier(skip_crypto=True)):
        # structurally identical message with a dummy signature.
        from repro.crypto import EcdsaSignature

        return SignedMessage(payload, "bsm", self.sim.now, cert, EcdsaSignature(1, 1))

    def send_event(self, event: str) -> None:
        """Broadcast an event BSM (e.g. hazard warning) immediately."""
        state = self.vehicle.state
        bsm = BasicSafetyMessage(
            msg_count=self._msg_count % 128,
            x=state.x, y=state.y, speed=state.speed, heading=state.heading,
            event=event,
        )
        self._msg_count += 1
        self.signed += 1
        self.radio.broadcast(self._sign(bsm.encode()))

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def _enqueue(self, message: SignedMessage, sender: str) -> None:
        self._queue.append((self.sim.now, message))
        if not self._verifying:
            self._verifying = True
            self.sim.schedule(self.verify_time, self._process_one)

    def _process_one(self) -> None:
        # Shed everything that already blew its deadline.
        while self._queue and self.sim.now - self._queue[0][0] > self.queue_deadline:
            self._queue.popleft()
            self.dropped_overload += 1
        if not self._queue:
            self._verifying = False
            return
        arrival, message = self._queue.popleft()
        reason = self.verifier.verify(message, self.sim.now, required_psid="bsm")
        latency = self.sim.now - arrival
        if reason is None:
            self.verify_latencies.append(latency)
            bsm = BasicSafetyMessage.decode(message.payload)
            self.accepted.append((self.sim.now, bsm, message.certificate.subject))
            if self.on_bsm is not None:
                self.on_bsm(self.sim.now, bsm, message.certificate.subject, message)
            if bsm.event:
                self.trace.emit(self.sim.now, self.name, "v2x.event",
                                event=bsm.event, sender=message.certificate.subject)
        else:
            self.rejects[reason] = self.rejects.get(reason, 0) + 1
        if self._queue:
            self.sim.schedule(self.verify_time, self._process_one)
        else:
            self._verifying = False

    # ------------------------------------------------------------------
    @property
    def verified_ok(self) -> int:
        return len(self.accepted)

    def mean_verify_latency(self) -> float:
        if not self.verify_latencies:
            return 0.0
        return sum(self.verify_latencies) / len(self.verify_latencies)
