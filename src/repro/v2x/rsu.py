"""Roadside units (RSUs).

Fixed infrastructure stations: verify incoming BSMs (same pipeline as an
OBU), maintain a local traffic picture, and broadcast signed infrastructure
messages (signal phase, hazard warnings).  Their density is one axis of the
E6 verification-load sweep.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.sim import Simulator, TraceRecorder
from repro.v2x.bsm import BasicSafetyMessage
from repro.v2x.certificates import Certificate
from repro.v2x.channel import Radio, WirelessChannel
from repro.v2x.ieee1609 import MessageVerifier, SignedMessage, sign_payload


class RoadsideUnit:
    """A fixed V2X station with an infrastructure certificate."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        position: Tuple[float, float],
        channel: WirelessChannel,
        verifier: MessageVerifier,
        certificate: Certificate,
        private_key: int,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.position = position
        self.verifier = verifier
        self.certificate = certificate
        self.private_key = private_key
        self.trace = trace if trace is not None else TraceRecorder()
        self.radio: Radio = channel.attach(name, lambda: self.position)
        self.radio.on_receive(self._receive)
        # Local traffic picture: pseudonym subject -> latest accepted BSM.
        self.traffic_picture: Dict[str, Tuple[float, BasicSafetyMessage]] = {}
        self.accepted = 0
        self.rejected = 0

    def _receive(self, message: SignedMessage, sender: str) -> None:
        reason = self.verifier.verify(message, self.sim.now, required_psid="bsm")
        if reason is not None:
            self.rejected += 1
            return
        self.accepted += 1
        bsm = BasicSafetyMessage.decode(message.payload)
        self.traffic_picture[message.certificate.subject] = (self.sim.now, bsm)

    def vehicles_in_picture(self, max_age: float = 2.0) -> int:
        """Distinct (pseudonymous) senders heard within ``max_age``."""
        now = self.sim.now
        return sum(1 for t, _ in self.traffic_picture.values() if now - t <= max_age)

    def broadcast_warning(self, event: str) -> None:
        """Send a signed infrastructure message (e.g. 'ice ahead')."""
        bsm = BasicSafetyMessage(
            msg_count=0, x=self.position[0], y=self.position[1],
            speed=0.0, heading=0.0, event=event,
        )
        message = sign_payload(
            bsm.encode(), "bsm", self.sim.now, self.certificate, self.private_key,
        )
        self.radio.broadcast(message)
        self.trace.emit(self.sim.now, self.name, "rsu.warning", event=event)
