"""SCMS-like PKI hierarchy with batch pseudonym issuance.

Structure (simplified from the Security Credential Management System):

- **Root CA** anchors trust.
- **Enrollment CA** issues each vehicle one long-term enrollment
  certificate (its identity with the OEM).
- **Pseudonym CA** issues *batches* of short-lived pseudonym certificates
  against a valid enrollment certificate; pseudonyms carry random subject
  ids, so broadcast messages do not expose the vehicle identity -- the
  paper's anonymization requirement.

The deliberate simplification: real SCMS splits the pseudonym CA from the
registration authority and uses butterfly key expansion so no single party
links pseudonyms to identity; here one object plays both roles but keeps a
separable linkage map so E7 can model "PKI insider" vs "eavesdropper"
adversaries distinctly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.crypto import EcdsaKeyPair, HmacDrbg
from repro.v2x.certificates import Certificate, CertificateAuthority, CertificateError


@dataclass
class PseudonymBatch:
    """A batch of pseudonym certificates with their private keys."""

    vehicle_id: str
    entries: List[Tuple[Certificate, int]]  # (certificate, private scalar)

    def __len__(self) -> int:
        return len(self.entries)


class PkiHierarchy:
    """Root -> {enrollment CA, pseudonym CA} with issuance flows."""

    def __init__(self, seed: bytes = b"pki-seed") -> None:
        self.root = CertificateAuthority("root-ca", seed + b"/root")
        self.enrollment_ca = CertificateAuthority(
            "enrollment-ca", seed + b"/ecas", parent=self.root,
        )
        self.pseudonym_ca = CertificateAuthority(
            "pseudonym-ca", seed + b"/pcas", parent=self.root,
        )
        self._seed = seed
        self._enrolled: Dict[str, Certificate] = {}
        # Insider linkage map: pseudonym digest -> vehicle id.  Exists in
        # the model to represent what a compromised/subpoenaed PKI knows.
        self.linkage_map: Dict[bytes, str] = {}

    def trust_store(self) -> Dict[str, CertificateAuthority]:
        """What receivers install: all CAs keyed by name."""
        return {
            ca.name: ca
            for ca in (self.root, self.enrollment_ca, self.pseudonym_ca)
        }

    # ------------------------------------------------------------------
    def enroll_vehicle(self, vehicle_id: str, valid_to: float = 1e9) -> Tuple[Certificate, int]:
        """Issue the long-term enrollment certificate for a vehicle."""
        if vehicle_id in self._enrolled:
            raise CertificateError(f"{vehicle_id} already enrolled")
        keys = EcdsaKeyPair.generate(
            HmacDrbg(self._seed + b"/veh", personalization=vehicle_id.encode())
        )
        cert = self.enrollment_ca.issue(
            subject=vehicle_id, public_key=keys.public,
            valid_from=0.0, valid_to=valid_to,
            psids=frozenset({"enrollment"}),
        )
        self._enrolled[vehicle_id] = cert
        return cert, keys.private

    def issue_pseudonyms(
        self,
        vehicle_id: str,
        enrollment_cert: Certificate,
        count: int,
        validity_start: float,
        validity_per_cert: float = 300.0,
        overlap: bool = True,
    ) -> PseudonymBatch:
        """Issue ``count`` pseudonym certificates to an enrolled vehicle.

        With ``overlap`` (the SCMS default) all certificates in the batch
        share the validity period, so rotation times are unlinkable; without
        it they are consecutive time slices (cheaper, but rotation times
        become predictable -- an E7 ablation).
        """
        stored = self._enrolled.get(vehicle_id)
        if stored is None or stored.digest != enrollment_cert.digest:
            raise CertificateError(f"{vehicle_id} not enrolled or cert mismatch")
        if count < 1:
            raise CertificateError("batch must contain at least one certificate")
        entries: List[Tuple[Certificate, int]] = []
        for i in range(count):
            keys = EcdsaKeyPair.generate(HmacDrbg(
                self._seed + b"/pseudo",
                personalization=f"{vehicle_id}/{validity_start}/{i}".encode(),
            ))
            if overlap:
                start = validity_start
                end = validity_start + validity_per_cert * count
            else:
                start = validity_start + i * validity_per_cert
                end = start + validity_per_cert
            subject = keys.public_bytes()[1:9].hex()  # opaque random-looking id
            cert = self.pseudonym_ca.issue(
                subject=subject, public_key=keys.public,
                valid_from=start, valid_to=end,
                psids=frozenset({"bsm"}), is_pseudonym=True,
            )
            self.linkage_map[cert.digest] = vehicle_id
            entries.append((cert, keys.private))
        return PseudonymBatch(vehicle_id, entries)

    def revoke_vehicle(self, vehicle_id: str) -> int:
        """Misbehaviour response: revoke all of a vehicle's pseudonyms.

        Returns the number of certificates added to the pseudonym CA CRL.
        Uses the insider linkage map -- exactly the capability the SCMS
        linkage authorities provide.
        """
        count = 0
        for digest, vid in self.linkage_map.items():
            if vid == vehicle_id:
                # CRL stores digests; synthesise a lookup via a tiny shim.
                self.pseudonym_ca.crl._revoked.add(digest)
                count += 1
        return count
