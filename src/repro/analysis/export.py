"""Trace and sweep-result export (CSV / JSON lines).

Simulation runs produce :class:`~repro.sim.trace.TraceRecorder` streams
and :class:`~repro.analysis.sweep.SweepResult` tables; downstream users
want them in their own tooling.  Plain-stdlib writers, no dependencies.
"""

from __future__ import annotations

import csv
import io
import json
from typing import IO, Iterable, List, Optional

from repro.analysis.sweep import SweepResult
from repro.sim.trace import TraceRecorder


def trace_to_jsonl(trace: TraceRecorder, stream: Optional[IO[str]] = None) -> str:
    """Write each trace record as one JSON object per line."""
    out = stream if stream is not None else io.StringIO()
    for record in trace:
        out.write(json.dumps({
            "time": record.time,
            "source": record.source,
            "kind": record.kind,
            **{f"data_{k}": _jsonable(v) for k, v in record.data.items()},
        }, sort_keys=True))
        out.write("\n")
    return out.getvalue() if stream is None else ""


def trace_to_csv(trace: TraceRecorder, stream: Optional[IO[str]] = None) -> str:
    """Write the trace as CSV with a unified column set."""
    records = list(trace)
    data_keys: List[str] = sorted({k for r in records for k in r.data})
    out = stream if stream is not None else io.StringIO()
    writer = csv.writer(out)
    writer.writerow(["time", "source", "kind", *data_keys])
    for record in records:
        writer.writerow([
            record.time, record.source, record.kind,
            *(_jsonable(record.data.get(k, "")) for k in data_keys),
        ])
    return out.getvalue() if stream is None else ""


def sweep_to_csv(result: SweepResult, stream: Optional[IO[str]] = None) -> str:
    """Write a sweep result as CSV (columns in table order)."""
    out = stream if stream is not None else io.StringIO()
    writer = csv.writer(out)
    writer.writerow(result.columns)
    for row in result.rows:
        writer.writerow([_jsonable(row.get(c, "")) for c in result.columns])
    return out.getvalue() if stream is None else ""


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, bytes):
        return value.hex()
    if isinstance(value, (list, tuple, set)):
        return [_jsonable(v) for v in value]
    return str(value)
