"""Parameter-sweep harness used by benchmarks and examples.

A :class:`Sweep` runs one experiment function over a parameter grid and
collects rows; rows render as aligned-text tables (the benches print these
in lieu of the paper's -- nonexistent -- tables, per DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence


@dataclass
class SweepResult:
    """Collected rows of one sweep."""

    name: str
    columns: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)

    def add(self, **row: Any) -> None:
        self.rows.append(row)

    def column(self, name: str) -> List[Any]:
        return [row.get(name) for row in self.rows]

    def to_table(self, float_fmt: str = "{:.4g}") -> str:
        """Aligned plain-text table."""
        def fmt(value: Any) -> str:
            if isinstance(value, bool):
                return "yes" if value else "no"
            if isinstance(value, float):
                return float_fmt.format(value)
            return str(value)

        header = list(self.columns)
        body = [[fmt(row.get(c, "")) for c in header] for row in self.rows]
        widths = [
            max(len(h), *(len(r[i]) for r in body)) if body else len(h)
            for i, h in enumerate(header)
        ]
        lines = [
            f"== {self.name} ==",
            "  ".join(h.ljust(w) for h, w in zip(header, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for r in body:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(r, widths)))
        return "\n".join(lines)


class Sweep:
    """Run ``fn(**params)`` over a grid; ``fn`` returns a row dict."""

    def __init__(self, name: str, fn: Callable[..., Dict[str, Any]]) -> None:
        self.name = name
        self.fn = fn

    def run(self, grid: Sequence[Dict[str, Any]],
            columns: Optional[List[str]] = None) -> SweepResult:
        rows = []
        for params in grid:
            row = dict(params)
            row.update(self.fn(**params))
            rows.append(row)
        if columns is None:
            columns = list(rows[0].keys()) if rows else []
        result = SweepResult(self.name, columns, rows)
        return result
