"""Detection-quality metrics for IDS experiments.

Ground truth comes from attack objects (their ``was_active_at`` window or
explicit frame labels); predictions are detector alerts.  Scoring is
per-frame: a frame observed while an attack was active counts positive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Sequence, Tuple

from repro.ids.base import Alert


@dataclass
class ConfusionMatrix:
    tp: int = 0
    fp: int = 0
    tn: int = 0
    fn: int = 0

    @property
    def precision(self) -> float:
        return self.tp / (self.tp + self.fp) if (self.tp + self.fp) else 0.0

    @property
    def recall(self) -> float:
        return self.tp / (self.tp + self.fn) if (self.tp + self.fn) else 0.0

    @property
    def false_positive_rate(self) -> float:
        return self.fp / (self.fp + self.tn) if (self.fp + self.tn) else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    @property
    def accuracy(self) -> float:
        total = self.tp + self.fp + self.tn + self.fn
        return (self.tp + self.tn) / total if total else 0.0


def score_alerts(
    observations: Sequence[Tuple[float, bool]],
    alerts: Sequence[Alert],
    tolerance: float = 0.0,
) -> ConfusionMatrix:
    """Score per-observation.

    ``observations``: (time, is_attack_frame) for every frame the detector
    saw.  An observation counts as *alerted* if some alert fired within
    ``tolerance`` seconds of it (0 = exact same timestamp).
    """
    alert_times = sorted(a.time for a in alerts)

    def alerted(time: float) -> bool:
        # Binary search window.
        import bisect
        left = bisect.bisect_left(alert_times, time - tolerance)
        return left < len(alert_times) and alert_times[left] <= time + tolerance

    cm = ConfusionMatrix()
    for time, is_attack in observations:
        hit = alerted(time)
        if is_attack and hit:
            cm.tp += 1
        elif is_attack and not hit:
            cm.fn += 1
        elif not is_attack and hit:
            cm.fp += 1
        else:
            cm.tn += 1
    return cm


def detection_metrics(cm: ConfusionMatrix) -> dict:
    """Flat metric dict for reporting tables."""
    return {
        "precision": cm.precision,
        "recall": cm.recall,
        "fpr": cm.false_positive_rate,
        "f1": cm.f1,
        "accuracy": cm.accuracy,
    }


def roc_points(
    scored: Sequence[Tuple[float, bool]],
) -> List[Tuple[float, float]]:
    """ROC curve from (score, is_attack) pairs.

    Returns (fpr, tpr) points sorted by threshold descending, suitable for
    plotting or AUC computation.
    """
    ranked = sorted(scored, key=lambda item: -item[0])
    positives = sum(1 for _, y in ranked if y)
    negatives = len(ranked) - positives
    points = [(0.0, 0.0)]
    tp = fp = 0
    for score, is_attack in ranked:
        if is_attack:
            tp += 1
        else:
            fp += 1
        points.append((
            fp / negatives if negatives else 0.0,
            tp / positives if positives else 0.0,
        ))
    return points


def auc(points: Sequence[Tuple[float, float]]) -> float:
    """Trapezoidal area under an ROC curve."""
    area = 0.0
    for (x0, y0), (x1, y1) in zip(points, points[1:]):
        area += (x1 - x0) * (y0 + y1) / 2
    return area
