"""Runtime calibration of simulation cost parameters.

Scale experiments (E6) model cryptographic cost with a ``verify_rate``
parameter instead of paying pure-Python ECDSA time per message (DESIGN.md
§4).  These helpers measure the *actual* throughput of this build's
primitives so a user can plug realistic platform numbers in::

    rate = measure_ecdsa_verify_rate()
    e06_v2x_density.run(verify_rate=rate)

On automotive silicon the figure comes from the HSM datasheet instead;
the measurement here keeps the simulation honest about its own substrate.
"""

from __future__ import annotations

import time
from typing import Dict

from repro.crypto import (
    AES,
    EcdsaKeyPair,
    HmacDrbg,
    aes_cmac,
    ecdsa_sign,
    ecdsa_verify,
    sha256,
)


def _rate(fn, n: int) -> float:
    start = time.perf_counter()
    for _ in range(n):
        fn()
    elapsed = time.perf_counter() - start
    return n / elapsed if elapsed > 0 else float("inf")


def measure_ecdsa_verify_rate(samples: int = 10) -> float:
    """Verifications per second of this build's ECDSA-P256."""
    keypair = EcdsaKeyPair.generate(HmacDrbg(b"calibration"))
    message = b"calibration message"
    signature = ecdsa_sign(keypair.private, message)
    return _rate(lambda: ecdsa_verify(keypair.public, message, signature), samples)


def measure_ecdsa_sign_rate(samples: int = 10) -> float:
    """Signatures per second."""
    keypair = EcdsaKeyPair.generate(HmacDrbg(b"calibration"))
    counter = [0]

    def sign():
        counter[0] += 1
        ecdsa_sign(keypair.private, counter[0].to_bytes(8, "big"))

    return _rate(sign, samples)


def measure_cmac_rate(message_len: int = 64, samples: int = 200) -> float:
    """CMAC tags per second over ``message_len``-byte messages."""
    key = bytes(16)
    message = bytes(message_len)
    return _rate(lambda: aes_cmac(key, message), samples)


def measure_aes_block_rate(samples: int = 500) -> float:
    """AES block encryptions per second."""
    aes = AES(bytes(16))
    block = bytes(16)
    return _rate(lambda: aes.encrypt_block(block), samples)


def calibration_report(quick: bool = True) -> Dict[str, float]:
    """All rates in one dict (used by docs and the E6 setup)."""
    factor = 1 if quick else 10
    return {
        "ecdsa_verify_per_s": measure_ecdsa_verify_rate(5 * factor),
        "ecdsa_sign_per_s": measure_ecdsa_sign_rate(5 * factor),
        "cmac64_per_s": measure_cmac_rate(samples=100 * factor),
        "aes_block_per_s": measure_aes_block_rate(samples=200 * factor),
    }
