"""Analysis utilities: detection metrics, sweeps, summary statistics."""

from repro.analysis.metrics import (
    ConfusionMatrix,
    detection_metrics,
    roc_points,
    score_alerts,
)
from repro.analysis.sweep import Sweep, SweepResult
from repro.analysis.stats import mean, percentile, stdev, summarize
from repro.analysis.export import sweep_to_csv, trace_to_csv, trace_to_jsonl
from repro.analysis.calibration import calibration_report, measure_ecdsa_verify_rate

__all__ = [
    "ConfusionMatrix",
    "detection_metrics",
    "roc_points",
    "score_alerts",
    "Sweep",
    "SweepResult",
    "mean",
    "percentile",
    "stdev",
    "summarize",
    "sweep_to_csv",
    "trace_to_csv",
    "trace_to_jsonl",
    "calibration_report",
    "measure_ecdsa_verify_rate",
]
