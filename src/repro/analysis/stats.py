"""Small statistics helpers (no numpy dependency in the core library)."""

from __future__ import annotations

import math
from typing import Dict, Sequence


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for empty input."""
    return sum(values) / len(values) if values else 0.0


def stdev(values: Sequence[float]) -> float:
    """Population standard deviation; 0.0 for fewer than two values."""
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / len(values))


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, q in [0, 100]."""
    if not values:
        return 0.0
    if not 0 <= q <= 100:
        raise ValueError("q in [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100) * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Mean/std/min/p50/p95/p99/max summary for reporting."""
    if not values:
        return {k: 0.0 for k in ("mean", "std", "min", "p50", "p95", "p99", "max")}
    return {
        "mean": mean(values),
        "std": stdev(values),
        "min": min(values),
        "p50": percentile(values, 50),
        "p95": percentile(values, 95),
        "p99": percentile(values, 99),
        "max": max(values),
    }
