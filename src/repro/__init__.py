"""autosec -- an extensible automotive security architecture framework.

Executable reproduction of *"Extensibility in Automotive Security: Current
Practice and Challenges"* (Ray, Chen, Bhadra, Al Faruque -- DAC 2017): the
4+1-layer security assurance architecture, every substrate the paper
names (CAN/LIN/FlexRay/Ethernet, SHE secure processing, V2X with a
pseudonym PKI, Uptane-style OTA, PKES/immobilizer access security), the
paper's attack taxonomy as runnable attacks, and a claim-derived
experiment suite (see DESIGN.md and EXPERIMENTS.md).

Quick start::

    from repro.sim import Simulator
    from repro.ivn import CanBus, CanFrame

    sim = Simulator()
    bus = CanBus(sim, bitrate=500_000)
    ecu = bus.attach("engine")
    ecu.send(CanFrame(0x0C9, b"\\x10\\x27"))
    sim.run()

Subpackages (importable a la carte; nothing heavy at top level):

- :mod:`repro.sim` -- discrete-event kernel.
- :mod:`repro.crypto` -- AES/CMAC/SHA-256/ECDSA from scratch.
- :mod:`repro.ivn` -- CAN, LIN, FlexRay, Automotive Ethernet, SecOC.
- :mod:`repro.ecu` -- ECUs, SHE, firmware, hypervisor, tamper detection.
- :mod:`repro.gateway` -- firewall + domain router + quarantine.
- :mod:`repro.ids` -- frequency/entropy/specification IDS + ensemble.
- :mod:`repro.v2x` -- IEEE 1609.2-style messaging, PKI, privacy.
- :mod:`repro.ota` -- Uptane-style update framework.
- :mod:`repro.access` -- immobilizer, PKES, relay, distance bounding.
- :mod:`repro.attacks` -- the attack library.
- :mod:`repro.physical` -- vehicle, sensors, fusion, emissions.
- :mod:`repro.core` -- the 4+1-layer architecture, policy engine,
  extensibility, safety model, trade-off controller.
- :mod:`repro.diag` -- ISO-TP transport, UDS services, SecurityAccess.
- :mod:`repro.soc` -- fleet-scale VSOC: telemetry ingestion, cross-vehicle
  correlation, incident lifecycle, closed-loop remediation.
- :mod:`repro.analysis` -- metrics, sweeps, statistics.
- :mod:`repro.experiments` -- drivers for experiments E1..E17.
"""

__version__ = "1.0.0"

__all__ = [
    "sim",
    "crypto",
    "ivn",
    "ecu",
    "gateway",
    "ids",
    "v2x",
    "ota",
    "access",
    "attacks",
    "physical",
    "core",
    "diag",
    "soc",
    "analysis",
    "experiments",
]
