"""Physical access security (the architecture's "+1" layer).

Models §4.3: software-assisted vehicle access and its published breaks --

- :mod:`repro.access.dst_cipher` -- a deliberately weak 40-bit
  challenge-response cipher in the mould of the DST transponder broken by
  Bono et al. (key crackable by brute force).
- :mod:`repro.access.immobilizer` -- engine immobilizer using the
  transponder, plus the key-cracking attack.
- :mod:`repro.access.keyless` -- passive keyless entry and start (PKES)
  with the Francillon-style relay attack and the distance-bounding
  defence.
"""

from repro.access.dst_cipher import ToyDst
from repro.access.immobilizer import Immobilizer, KeyCracker, Transponder
from repro.access.keyless import DistanceBounder, KeyFob, PkesSystem, RelayAttack

__all__ = [
    "ToyDst",
    "Immobilizer",
    "KeyCracker",
    "Transponder",
    "DistanceBounder",
    "KeyFob",
    "PkesSystem",
    "RelayAttack",
]
