"""Passive keyless entry and start (PKES), the relay attack, and
distance bounding.

Protocol shape (as in production PKES): the car periodically emits a
low-frequency (LF) wake/challenge with ~2 m range; the fob, if woken,
answers over UHF (~100 m) with a MAC over the challenge.  Proximity is
*inferred* from the LF link budget -- which is exactly what the relay
attack (Francillon et al.) defeats: two radio relays extend the LF channel
so the fob in the owner's house answers a challenge at the car.

The distance-bounding defence measures the challenge-response round-trip
time.  Radio-over-relay adds processing latency (tens of nanoseconds to
microseconds per hop), so an RTT bound tight enough for a few metres of
slack exposes the relay.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.crypto import aes_cmac

SPEED_OF_LIGHT = 299_792_458.0
LF_WAKE_RANGE_M = 2.0


class KeyFob:
    """The owner's fob: answers LF challenges with a CMAC over UHF."""

    def __init__(self, key: bytes, fob_id: str = "FOB-1",
                 processing_time_s: float = 1e-6) -> None:
        if len(key) != 16:
            raise ValueError("fob key is 16 bytes")
        self.key = key
        self.fob_id = fob_id
        self.processing_time_s = processing_time_s
        self.challenges_answered = 0

    def respond(self, challenge: bytes) -> bytes:
        self.challenges_answered += 1
        return aes_cmac(self.key, challenge, tag_len=8)


@dataclass
class UnlockAttempt:
    """Outcome + physics of one unlock attempt."""

    unlocked: bool
    reason: str
    measured_rtt_s: float = 0.0
    implied_distance_m: float = 0.0


class DistanceBounder:
    """RTT-based proximity check.

    ``max_distance_m``: the largest fob distance the car accepts.  The
    accepted RTT budget is ``2*d/c + fob_processing + slack``.
    """

    def __init__(self, max_distance_m: float = 3.0, slack_s: float = 5e-9) -> None:
        self.max_distance_m = max_distance_m
        self.slack_s = slack_s

    def budget_s(self, fob_processing_s: float) -> float:
        return 2 * self.max_distance_m / SPEED_OF_LIGHT + fob_processing_s + self.slack_s

    def implied_distance(self, rtt_s: float, fob_processing_s: float) -> float:
        flight = max(0.0, rtt_s - fob_processing_s)
        return flight * SPEED_OF_LIGHT / 2


class RelayAttack:
    """Two-box radio relay extending the LF channel.

    ``relay_latency_s``: added processing per round trip (both hops).
    Even "analogue" purpose-built relays add tens of nanoseconds; digital
    ones add microseconds.  E8 sweeps this against the bounder's budget.
    """

    def __init__(self, relay_latency_s: float = 1e-6) -> None:
        if relay_latency_s < 0:
            raise ValueError("latency cannot be negative")
        self.relay_latency_s = relay_latency_s
        self.active = False

    def engage(self) -> None:
        self.active = True

    def disengage(self) -> None:
        self.active = False


class PkesSystem:
    """The vehicle side of passive keyless entry."""

    def __init__(
        self,
        fob_key: bytes,
        distance_bounder: Optional[DistanceBounder] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.fob_key = fob_key
        self.bounder = distance_bounder
        self.rng = rng if rng is not None else random.Random()
        self.unlocks = 0
        self.rejections = 0

    def attempt_unlock(
        self,
        fob: KeyFob,
        fob_distance_m: float,
        relay: Optional[RelayAttack] = None,
    ) -> UnlockAttempt:
        """One full LF-challenge / UHF-response exchange.

        ``fob_distance_m`` is the *true* fob distance; the relay, if
        engaged, makes the LF link reach regardless of distance but adds
        its latency to the measured round trip.
        """
        relayed = relay is not None and relay.active
        if fob_distance_m > LF_WAKE_RANGE_M and not relayed:
            self.rejections += 1
            return UnlockAttempt(False, "fob out of LF range")

        challenge = self.rng.randbytes(16)
        response = fob.respond(challenge)
        if response != aes_cmac(self.fob_key, challenge, tag_len=8):
            self.rejections += 1
            return UnlockAttempt(False, "bad response")

        rtt = 2 * fob_distance_m / SPEED_OF_LIGHT + fob.processing_time_s
        if relayed:
            rtt += relay.relay_latency_s

        if self.bounder is not None:
            implied = self.bounder.implied_distance(rtt, fob.processing_time_s)
            if rtt > self.bounder.budget_s(fob.processing_time_s):
                self.rejections += 1
                return UnlockAttempt(
                    False, "distance bound exceeded",
                    measured_rtt_s=rtt, implied_distance_m=implied,
                )
            self.unlocks += 1
            return UnlockAttempt(True, "unlocked", rtt, implied)

        self.unlocks += 1
        return UnlockAttempt(True, "unlocked", rtt,
                             rtt and (rtt - fob.processing_time_s) * SPEED_OF_LIGHT / 2)
