"""Engine immobilizer: transponder challenge-response plus the crack.

The immobilizer ECU challenges the key's transponder; the engine is
released only on a correct response.  :class:`KeyCracker` implements the
Bono et al. attack pipeline: eavesdrop a handful of (challenge, response)
pairs, brute-force the key space, then simulate the transponder.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.access.dst_cipher import KEY_BITS, ToyDst, _MASK40


class Transponder:
    """The in-key RFID transponder."""

    def __init__(self, key: int, serial: str = "TX-0001") -> None:
        self.cipher = ToyDst(key)
        self.serial = serial
        self.challenges_seen = 0

    def respond(self, challenge: int) -> int:
        self.challenges_seen += 1
        return self.cipher.respond(challenge)


class Immobilizer:
    """The vehicle-side immobilizer ECU."""

    def __init__(self, key: int, rng: Optional[random.Random] = None) -> None:
        self.cipher = ToyDst(key)
        self.rng = rng if rng is not None else random.Random()
        self.authorized_starts = 0
        self.rejected_starts = 0

    def attempt_start(self, transponder) -> bool:
        """Challenge whatever transponder is in the field; release engine
        on a correct response."""
        challenge = self.rng.getrandbits(40)
        response = transponder.respond(challenge)
        if response == self.cipher.respond(challenge):
            self.authorized_starts += 1
            return True
        self.rejected_starts += 1
        return False


@dataclass
class CrackResult:
    key: Optional[int]
    keys_tried: int
    elapsed_s: float

    def extrapolate(self, target_bits: int = KEY_BITS) -> float:
        """Estimated wall-clock to brute force ``target_bits`` at the
        measured rate (the Bono-style scaling argument)."""
        if self.elapsed_s <= 0 or self.keys_tried == 0:
            return float("inf")
        rate = self.keys_tried / self.elapsed_s
        return (1 << target_bits) / rate


class KeyCracker:
    """Brute-force key recovery from eavesdropped pairs.

    ``known_bits``: how many high key bits the attacker already knows
    (models partial reverse engineering / reduced search space); the
    remaining ``KEY_BITS - known_bits`` are searched exhaustively.
    """

    def __init__(self, pairs: List[Tuple[int, int]]) -> None:
        if len(pairs) < 2:
            raise ValueError("need at least 2 challenge/response pairs "
                             "(one pair leaves ~65k candidates at 24-bit responses)")
        self.pairs = list(pairs)

    @staticmethod
    def eavesdrop(transponder: Transponder, n_pairs: int,
                  rng: Optional[random.Random] = None) -> List[Tuple[int, int]]:
        """Collect pairs by actively querying (skimming) the transponder."""
        rng = rng if rng is not None else random.Random()
        pairs = []
        for _ in range(n_pairs):
            challenge = rng.getrandbits(40)
            pairs.append((challenge, transponder.respond(challenge)))
        return pairs

    def crack(self, true_key_prefix: int, known_bits: int) -> CrackResult:
        """Search the ``KEY_BITS - known_bits`` unknown low bits.

        ``true_key_prefix`` supplies the known high bits (attacker
        knowledge), i.e. candidates are ``prefix | low`` for all low.
        """
        if not 0 <= known_bits < KEY_BITS:
            raise ValueError("known_bits must be in [0, KEY_BITS)")
        unknown_bits = KEY_BITS - known_bits
        prefix = true_key_prefix & (((1 << known_bits) - 1) << unknown_bits)
        start = time.perf_counter()
        tried = 0
        first_challenge, first_response = self.pairs[0]
        for low in range(1 << unknown_bits):
            candidate = prefix | low
            tried += 1
            cipher = ToyDst(candidate)
            if cipher.respond(first_challenge) != first_response:
                continue
            if all(cipher.respond(c) == r for c, r in self.pairs[1:]):
                return CrackResult(candidate, tried, time.perf_counter() - start)
        return CrackResult(None, tried, time.perf_counter() - start)
