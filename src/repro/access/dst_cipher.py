"""A deliberately weak challenge-response cipher (DST-40 stand-in).

The Digital Signature Transponder broken by Bono et al. used a secret
40-bit key and an unpublished cipher; reverse engineering plus key
cracking (hours on FPGAs in 2005) defeated it.  We model the *shape*: a
40-bit-keyed, 40-bit-challenge, 24-bit-response keyed permutation that is
sound against casual inspection but has a keyspace small enough to brute
force.  Tests and the E8 bench crack reduced-width keys (16-24 effective
bits) to keep runtimes sane and then *extrapolate* the 40-bit cost, which
is precisely the argument of the original paper.
"""

from __future__ import annotations

KEY_BITS = 40
CHALLENGE_BITS = 40
RESPONSE_BITS = 24

_MASK40 = (1 << 40) - 1


class ToyDst:
    """A 40-bit keyed response function.

    Structure: a 40-bit nonlinear feedback network iterated over the
    challenge, keyed by XOR-injected round keys -- enough diffusion that
    responses look random, with no claim of real cryptographic strength
    (that weakness is the point being reproduced).
    """

    def __init__(self, key: int) -> None:
        if not 0 <= key <= _MASK40:
            raise ValueError("key must be a 40-bit integer")
        self.key = key

    @staticmethod
    def _round(state: int, round_key: int) -> int:
        state ^= round_key
        # Nonlinear mixing: rotate, multiply-ish via shifts, AND/OR taps.
        rotated = ((state << 13) | (state >> (40 - 13))) & _MASK40
        nonlinear = (state & (state >> 7)) ^ (rotated | (state >> 3))
        return (state ^ nonlinear ^ (rotated >> 5)) & _MASK40

    def respond(self, challenge: int) -> int:
        """The transponder's 24-bit response to a 40-bit challenge."""
        if not 0 <= challenge <= _MASK40:
            raise ValueError("challenge must be a 40-bit integer")
        state = challenge
        round_key = self.key
        for i in range(24):
            state = self._round(state, round_key)
            # Key schedule: rotate the key each round.
            round_key = ((round_key << 3) | (round_key >> (40 - 3))) & _MASK40
        return state & ((1 << RESPONSE_BITS) - 1)
