"""Closed-loop remediation: detections become fleet-wide countermeasures.

Scalas & Giacinto's point (PAPERS.md): on-board detection only pays off
when it closes the loop into response.  The orchestrator walks each
incident through the lifecycle on the simulation clock:

1. **triage** (analyst latency, ``triage_delay_s``);
2. **containment** (``containment_delay_s``): author a DENY rule for the
   campaign signature, version-bump the central
   :class:`~repro.core.policy.SecurityPolicy`, export it as a
   CMAC-authenticated bundle and apply it through a real vehicle-side
   :class:`~repro.core.policy.PolicyEngine` (rollback-protected, exactly
   the §7 centralized-policy path), then halt the campaign's spread;
3. **remediation** (``remediation_delay_s``): cut a patched firmware
   image and run an Uptane campaign -- full metadata verification via
   :mod:`repro.ota` for a sample of vehicles, modelled bookkeeping for
   the rest of the affected set.

Every closed incident yields a :class:`RemediationOutcome` carrying the
two numbers the E17 bench is scored on: detection-to-remediation latency
and blast radius averted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.core.policy import (
    PolicyDecision,
    PolicyEngine,
    PolicyRule,
    SecurityPolicy,
)
from repro.ecu.firmware import FirmwareImage, FirmwareStore
from repro.ota import DirectorRepository, ImageRepository, UptaneClient
from repro.sim import Simulator
from repro.soc.fleet import FleetModel
from repro.soc.incident import Incident, IncidentState, IncidentTracker


@dataclass(frozen=True)
class RemediationOutcome:
    """Scorecard for one remediated incident."""

    incident_id: str
    signature: str
    policy_version: int
    vehicles_patched: int
    ota_verified_sample: int
    detection_to_containment_s: float
    detection_to_remediation_s: float
    blast_radius: int
    blast_radius_averted: int


class ResponseOrchestrator:
    """Drives incidents from OPEN to REMEDIATED on the sim clock."""

    def __init__(
        self,
        sim: Simulator,
        tracker: IncidentTracker,
        fleet: FleetModel,
        update_key: bytes = b"soc-policy-key!!",
        triage_delay_s: float = 0.5,
        containment_delay_s: float = 1.5,
        remediation_delay_s: float = 6.0,
        ota_sample: int = 1,
    ) -> None:
        self.sim = sim
        self.tracker = tracker
        self.fleet = fleet
        self.triage_delay_s = triage_delay_s
        self.containment_delay_s = containment_delay_s
        self.remediation_delay_s = remediation_delay_s
        self.ota_sample = ota_sample

        base = SecurityPolicy(version=1, rules=[
            PolicyRule(frozenset(["*"]), frozenset(["*"]), frozenset(["*"]),
                       PolicyDecision.ALLOW, name="fleet-default"),
        ], default=PolicyDecision.ALLOW)
        # OEM backend authors updates; the reference vehicle-side engine
        # verifies the CMAC + version monotonicity of every push.
        self._update_key = update_key
        self.oem_engine = PolicyEngine(base, update_key)
        self.vehicle_engine = PolicyEngine(
            SecurityPolicy.deserialize(base.serialize()), update_key,
        )

        self._image_repo: Optional[ImageRepository] = None
        self._director: Optional[DirectorRepository] = None
        self._patch_version = 1
        self.outcomes: List[RemediationOutcome] = []
        self.policy_pushes = 0
        self.ota_results: Dict[str, int] = {"installed": 0, "failed": 0}

    # ------------------------------------------------------------------
    # Lifecycle hooks
    # ------------------------------------------------------------------
    def on_detection(self, incident: Incident) -> None:
        self.sim.schedule(self.triage_delay_s, self._triage, incident)

    def _triage(self, incident: Incident) -> None:
        if incident.state is not IncidentState.OPEN:
            return
        incident.advance(self.sim.now, IncidentState.TRIAGED)
        self.sim.schedule(self.containment_delay_s, self._contain, incident)

    def _contain(self, incident: Incident) -> None:
        if incident.state is not IncidentState.TRIAGED:
            return
        self._push_policy_block(incident.signature)
        self.fleet.contain(incident.signature, self.sim.now)
        incident.advance(self.sim.now, IncidentState.CONTAINED)
        self.sim.schedule(self.remediation_delay_s, self._remediate, incident)

    def _remediate(self, incident: Incident) -> None:
        if incident.state is not IncidentState.CONTAINED:
            return
        affected = self._affected_vehicles(incident.signature) | incident.vehicles
        verified = self._run_ota_campaign(incident.signature, affected)
        self.fleet.patch(incident.signature, affected)
        incident.advance(self.sim.now, IncidentState.REMEDIATED)
        self.outcomes.append(RemediationOutcome(
            incident_id=incident.incident_id,
            signature=incident.signature,
            policy_version=self.oem_engine.policy.version,
            vehicles_patched=len(affected),
            ota_verified_sample=verified,
            detection_to_containment_s=incident.time_to_containment_s or 0.0,
            detection_to_remediation_s=incident.time_to_remediation_s or 0.0,
            blast_radius=self.fleet.blast_radius(incident.signature),
            blast_radius_averted=self.fleet.blast_averted(incident.signature),
        ))

    # ------------------------------------------------------------------
    # Countermeasure paths
    # ------------------------------------------------------------------
    def _push_policy_block(self, signature: str) -> None:
        """Version-bump the central policy with a DENY for the signature
        and push the authenticated bundle through the vehicle engine."""
        current = self.oem_engine.policy
        block = PolicyRule(
            subjects=frozenset(["*"]),
            objects=frozenset([signature]),
            actions=frozenset(["*"]),
            decision=PolicyDecision.DENY,
            name=f"soc-block:{signature}",
        )
        candidate = SecurityPolicy(
            version=current.version + 1,
            rules=[block] + list(current.rules),
            default=current.default,
        )
        blob, tag = self.oem_engine.export_update(candidate, self._update_key)
        self.vehicle_engine.apply_update(blob, tag)
        self.oem_engine.policy = candidate
        self.oem_engine.update_history.append(candidate.version)
        self.policy_pushes += 1

    def _affected_vehicles(self, signature: str) -> Set[str]:
        campaign = self.fleet.campaigns.get(signature)
        if campaign is None:
            return set()
        # Patch everything the exploit could reach, not just confirmed
        # victims: the class-break means every target shares the flaw.
        return set(campaign.targets)

    def _ensure_ota(self) -> None:
        if self._director is None:
            self._image_repo = ImageRepository(seed=b"soc/image")
            self._director = DirectorRepository(seed=b"soc/director")

    def _make_vehicle_client(self, vehicle_id: str) -> UptaneClient:
        """Build one sample vehicle's Uptane client, pinned to the two
        repositories' root metadata (the factory trust anchors)."""
        assert self._image_repo is not None and self._director is not None
        store = FirmwareStore(FirmwareImage(
            "soc-patch", 1, b"factory", hardware_id="soc-ecu"))
        return UptaneClient(
            vehicle_id, store,
            image_root=self._image_repo.metadata["root"],
            director_root=self._director.metadata["root"],
        )

    def _run_ota_campaign(self, signature: str, affected: Set[str]) -> int:
        """Full Uptane verification for a sample; returns installs.

        The sample is a canary ring: if any sample vehicle *fails*
        Uptane verification, the campaign aborts immediately -- the
        remaining sample is never offered the image (a fleet-wide push
        of firmware that vehicles reject is worse than a late patch).
        Failures land in ``ota_results['failed']``, never silently.
        """
        if self.ota_sample <= 0 or not affected:
            return 0
        self._ensure_ota()
        assert self._image_repo is not None and self._director is not None
        self._patch_version += 1
        image = FirmwareImage("soc-patch", self._patch_version,
                              f"patched:{signature}".encode(),
                              hardware_id="soc-ecu")
        now = self.sim.now
        self._image_repo.add_image(image, now)
        installed = 0
        for vehicle_id in sorted(affected)[: self.ota_sample]:
            client = self._make_vehicle_client(vehicle_id)
            self._director.assign(vehicle_id, image, now)
            result = client.update(self._director, self._image_repo, now)
            if result.installed:
                installed += 1
                self.ota_results["installed"] += 1
            else:
                self.ota_results["failed"] += 1
                break
        return installed

    # ------------------------------------------------------------------
    def metrics(self) -> Dict[str, float]:
        averted = sum(o.blast_radius_averted for o in self.outcomes)
        d2r = [o.detection_to_remediation_s for o in self.outcomes]
        return {
            "policy_pushes": float(self.policy_pushes),
            "policy_version": float(self.oem_engine.policy.version),
            "incidents_remediated": float(len(self.outcomes)),
            "ota_installs": float(self.ota_results["installed"]),
            "ota_failures": float(self.ota_results["failed"]),
            "blast_radius_averted": float(averted),
            "mean_detection_to_remediation_s": (
                sum(d2r) / len(d2r) if d2r else 0.0
            ),
        }
