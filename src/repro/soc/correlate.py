"""Sliding-window cross-vehicle correlation.

The paper's §4.2 class-break argument: because a vehicle class shares
software, keys, and configurations, one working exploit recurs across
the fleet with the *same signature*.  Single-vehicle detection cannot
see that; a backend watching all vehicles can.  The engine here flags a
**campaign** when at least ``k`` *distinct* vehicles report the same
signature within a ``window``-second span.

Stream hygiene, in order of application:

1. **duplicate ids** -- at-least-once transports redeliver; an
   ``event_id`` is only ever counted once;
2. **lateness bound** -- events older than ``watermark - max_lateness``
   are dropped (out-of-order arrival *within* the bound is fine and
   still correlates);
3. **per-vehicle dedup** -- one noisy vehicle repeating a signature
   inside ``dedup_window`` seconds collapses to a single observation, so
   a single chatty ECU can never fake a fleet campaign.

Window semantics are **closed**: two events exactly ``window`` seconds
apart co-occur; ``window + ε`` apart do not.  (Pinned by the property
tests in ``tests/test_soc.py``.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Set, Tuple

from collections import deque

from repro.core.safety import Asil
from repro.soc.events import SecurityEvent


@dataclass(frozen=True)
class CampaignDetection:
    """The correlator's verdict: one signature active fleet-wide."""

    signature: str
    detect_time: float          # time of the event that tripped the rule
    first_time: float           # earliest in-window observation
    vehicles: Tuple[str, ...]   # distinct vehicles at detection, sorted
    window_s: float
    k: int

    @property
    def spread(self) -> int:
        return len(self.vehicles)


class CorrelationEngine:
    """Deduplicate per-vehicle noise; detect cross-fleet campaigns."""

    def __init__(
        self,
        window_s: float = 8.0,
        k: int = 3,
        dedup_window_s: float = 4.0,
        max_lateness_s: float = 2.0,
        min_severity: Asil = Asil.B,
    ) -> None:
        if k < 2:
            raise ValueError("a campaign needs k >= 2 vehicles")
        if window_s <= 0 or dedup_window_s < 0 or max_lateness_s < 0:
            raise ValueError("windows must be positive")
        self.window_s = window_s
        self.k = k
        self.dedup_window_s = dedup_window_s
        self.max_lateness_s = max_lateness_s
        self.min_severity = min_severity

        self._seen_ids: Set[str] = set()
        self._last_by_key: Dict[Tuple[str, str], float] = {}
        self._by_signature: Dict[str, Deque[Tuple[float, str]]] = {}
        self._flagged: Dict[str, CampaignDetection] = {}
        self._campaign_vehicles: Dict[str, Set[str]] = {}

        self.watermark = float("-inf")
        self.observed = 0
        self.duplicate_ids = 0
        self.late_dropped = 0
        self.low_severity_ignored = 0
        self.deduped = 0
        self.detections: List[CampaignDetection] = []

    # ------------------------------------------------------------------
    def observe(self, event: SecurityEvent) -> Optional[CampaignDetection]:
        """Feed one event; returns a detection the first time a signature
        crosses the k-vehicles-in-window threshold."""
        self.observed += 1

        if event.event_id in self._seen_ids:
            self.duplicate_ids += 1
            return None
        self._seen_ids.add(event.event_id)

        if event.time < self.watermark - self.max_lateness_s:
            self.late_dropped += 1
            return None
        if event.time > self.watermark:
            self.watermark = event.time

        # Only actionable telemetry (>= min_severity) can seed a campaign
        # window -- QM/A observability noise is counted and discarded, so
        # chatter can never manufacture a fleet incident.
        if event.severity < self.min_severity:
            self.low_severity_ignored += 1
            return None

        key = (event.vehicle_id, event.signature)
        last = self._last_by_key.get(key)
        if last is not None and abs(event.time - last) <= self.dedup_window_s:
            self.deduped += 1
            self._last_by_key[key] = max(last, event.time)
            return None
        self._last_by_key[key] = event.time

        if event.signature in self._flagged:
            # Campaign already open: track spread, don't re-fire.
            self._campaign_vehicles[event.signature].add(event.vehicle_id)
            return None

        entries = self._by_signature.setdefault(event.signature, deque())
        entries.append((event.time, event.vehicle_id))
        entries = self._prune(event.signature)

        vehicles = {v for _, v in entries}
        if len(vehicles) < self.k:
            return None

        detection = CampaignDetection(
            signature=event.signature,
            detect_time=event.time,
            first_time=min(t for t, _ in entries),
            vehicles=tuple(sorted(vehicles)),
            window_s=self.window_s,
            k=self.k,
        )
        self._flagged[event.signature] = detection
        self._campaign_vehicles[event.signature] = set(vehicles)
        self._by_signature.pop(event.signature, None)
        self.detections.append(detection)
        return detection

    def _prune(self, signature: str) -> Deque[Tuple[float, str]]:
        """Keep only entries within the closed window of the newest one;
        returns the surviving deque (callers must not hold the old one)."""
        entries = self._by_signature[signature]
        if not entries:
            return entries
        newest = max(t for t, _ in entries)
        cutoff = newest - self.window_s
        # Arrival order need not be time order (bounded lateness), so
        # filter rather than pop from the left.
        if any(t < cutoff for t, _ in entries):
            entries = deque((t, v) for t, v in entries if t >= cutoff)
            self._by_signature[signature] = entries
        return entries

    # ------------------------------------------------------------------
    @property
    def flagged_signatures(self) -> Tuple[str, ...]:
        return tuple(self._flagged)

    def campaign_vehicles(self, signature: str) -> Set[str]:
        """All vehicles attributed to a flagged campaign so far."""
        return set(self._campaign_vehicles.get(signature, set()))

    def pending_vehicles(self, signature: str) -> Set[str]:
        """Distinct vehicles currently in the (un-flagged) window."""
        return {v for _, v in self._by_signature.get(signature, ())}

    def metrics(self) -> Dict[str, float]:
        return {
            "observed": float(self.observed),
            "duplicate_ids": float(self.duplicate_ids),
            "late_dropped": float(self.late_dropped),
            "low_severity_ignored": float(self.low_severity_ignored),
            "deduped": float(self.deduped),
            "campaigns_flagged": float(len(self._flagged)),
        }
