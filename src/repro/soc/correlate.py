"""Sliding-window cross-vehicle correlation.

The paper's §4.2 class-break argument: because a vehicle class shares
software, keys, and configurations, one working exploit recurs across
the fleet with the *same signature*.  Single-vehicle detection cannot
see that; a backend watching all vehicles can.  The engine here flags a
**campaign** when at least ``k`` *distinct* vehicles report the same
signature within a ``window``-second span.

Stream hygiene, in order of application:

1. **duplicate ids** -- at-least-once transports redeliver; an
   ``event_id`` is only ever counted once;
2. **lateness bound** -- events older than ``watermark - max_lateness``
   are dropped (out-of-order arrival *within* the bound is fine and
   still correlates);
3. **per-vehicle dedup** -- one noisy vehicle repeating a signature
   inside ``dedup_window`` seconds collapses to a single observation, so
   a single chatty ECU can never fake a fleet campaign.

Window semantics are **closed**: two events exactly ``window`` seconds
apart co-occur; ``window + ε`` apart do not.  (Pinned by the property
tests in ``tests/test_soc.py``.)

Fleet-scale fast path (the 10^7-vehicle E17 cell):

- per-signature state is **incremental** -- a min-heap of in-window
  entries, a running distinct-vehicle count, and a monotonically
  tracked newest timestamp -- so one observe costs O(log w) in the
  window size instead of the O(w) set-rebuild + max()-rescan the
  :class:`ReferenceCorrelationEngine` (the original implementation,
  kept as the executable spec) pays per event;
- :meth:`CorrelationEngine.observe_batch` consumes a whole dispatched
  batch with hot state in locals, differential-tested equivalent to
  per-event :meth:`~CorrelationEngine.observe`;
- dedup/duplicate bookkeeping is **bounded**: ids and per-vehicle
  timestamps older than the watermark minus the retention horizon are
  evicted, so memory is O(events in horizon), not O(events ever);
- :class:`GlobalCampaignMerger` stitches shard-local engines into
  fleet-wide campaigns, which makes region-keyed sharding (one
  signature spread over many shards) detect exactly what a single
  global engine would.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush
from typing import (TYPE_CHECKING, Deque, Dict, Iterable, List, Optional,
                    Sequence, Set, Tuple)

from collections import deque

import numpy as np

from repro.core.safety import Asil
from repro.soc.columnar import BLOOM_BYTES
from repro.soc.events import SecurityEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.soc.columnar import ColumnarBatch

# Ledger chunk-list length cap: bounds the per-suspect chunk scans (and
# bloom false-positive buildup) on very long sweep-free streams.
_MAX_LEDGER_CHUNKS = 64

#: Below this size the columnar machinery costs more than it saves; the
#: engine silently delegates to ``observe_batch`` (identical semantics).
COLUMNAR_MIN_BATCH = 16


def k_for_fleet_size(n_vehicles: int, base_k: int = 3,
                     base_fleet: int = 1_000_000) -> int:
    """Distinct-vehicle threshold scaled to fleet size: ``base_k`` up to
    ``base_fleet`` vehicles, +1 per decade beyond.

    ``k`` is a noise floor, and the noise grows with the fleet: benign
    telemetry draws signatures from a fixed catalog, so the expected
    number of *distinct* vehicles hitting any one benign signature inside
    a correlation window scales linearly with fleet size.  A threshold
    tuned at 10^6 (k=3) is crossed by pure chance at 10^8 -- E17's XL
    cell measured precision 0.6 there, every miss a benign signature that
    three unrelated vehicles happened to share in-window.  Per-signature
    co-occurrence counts are Poisson-ish, so holding the false-campaign
    rate roughly constant needs ``k`` to grow with ``log(fleet)``, not
    with the fleet: one extra distinct-vehicle demand per decade.

    Real campaigns clear the raised bar by construction -- a §4.2
    class-break recurs across the fleet's shared software, so planted
    prevalences put orders of magnitude more than ``k`` vehicles in
    window (E17's XL regression pins precision >= 0.9 at recall 1.0).
    """
    if n_vehicles < 1:
        raise ValueError("n_vehicles must be >= 1")
    k = base_k
    scale = base_fleet
    while n_vehicles > scale * 3:  # past the decade's geometric midpoint
        k += 1
        scale *= 10
    return k


@dataclass(frozen=True)
class CampaignDetection:
    """The correlator's verdict: one signature active fleet-wide."""

    signature: str
    detect_time: float          # time of the event that tripped the rule
    first_time: float           # earliest in-window observation
    vehicles: Tuple[str, ...]   # distinct vehicles at detection, sorted
    window_s: float
    k: int

    @property
    def spread(self) -> int:
        return len(self.vehicles)

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe form (snapshot/restore round-trips it exactly)."""
        return {
            "signature": self.signature,
            "detect_time": self.detect_time,
            "first_time": self.first_time,
            "vehicles": list(self.vehicles),
            "window_s": self.window_s,
            "k": self.k,
        }

    @classmethod
    def from_dict(cls, obj: Dict[str, object]) -> "CampaignDetection":
        return cls(
            signature=obj["signature"],
            detect_time=obj["detect_time"],
            first_time=obj["first_time"],
            vehicles=tuple(obj["vehicles"]),
            window_s=obj["window_s"],
            k=obj["k"],
        )


#: float("-inf") is not valid strict JSON; snapshots encode it as None.
def _enc_time(t: float) -> Optional[float]:
    return None if t == float("-inf") else t


def _dec_time(t: Optional[float]) -> float:
    return float("-inf") if t is None else t


class _SignatureWindow:
    """Incremental per-signature window state.

    ``heap`` holds the live (time, vehicle) entries as a min-heap, so
    expiry is pop-from-the-top and ``first_time`` is ``heap[0]``;
    ``counts`` tracks live entries per vehicle, so the distinct-vehicle
    cardinality is ``len(counts)`` with no per-event set rebuild;
    ``newest`` is tracked monotonically -- pruning can only remove
    entries strictly older than ``newest - window``, never the maximum
    itself, so a running max is exact.

    The columnar fast path appends whole per-signature batch slices as
    **tail chunks** -- ``(times, vehicles, t_first, t_last, count)`` with
    times ascending and ``t_first >= newest`` at append time -- instead
    of per-entry heap pushes.  Chunks are pruned lazily (a whole chunk
    drops once its ``t_last`` expires; partially-expired entries wait)
    and folded into ``heap``/``counts`` only when scalar code needs
    exact state (:meth:`CorrelationEngine._fold_window`).  Because every
    chunk entry is >= every heap entry and chunks are globally
    ascending, extending the heap with them preserves the heap
    invariant without a heapify.  ``tail_len`` counts chunk entries
    (including lazily-retained expired ones), so
    ``len(counts) + tail_len`` upper-bounds the live distinct-vehicle
    cardinality -- the fire-possibility screen.
    """

    __slots__ = ("heap", "counts", "newest", "tail", "tail_len")

    def __init__(self) -> None:
        self.heap: List[Tuple[float, str]] = []
        self.counts: Dict[str, int] = {}
        self.newest = float("-inf")
        self.tail: List[Tuple[np.ndarray, np.ndarray, float, float, int]] = []
        self.tail_len = 0


class ColumnarResult:
    """Per-batch outcome of :meth:`CorrelationEngine.observe_columnar`.

    ``detections`` is ``(batch_index, detection)`` in batch-index order
    (exactly where ``observe_batch``'s verdict list would be non-None).
    ``hits`` lists, in batch-index order, the verdict-less events whose
    signature is flagged once the batch is fully observed -- the same
    predicate the center's batched handler evaluates per event
    (``verdict is None and is_flagged(signature)``), so campaign-spread
    attribution stays byte-identical across delivery paths.  ``hits`` is
    only populated when the caller asks (``track_hits=True``); shard
    handlers skip it because spread surfaces at merge time.
    """

    __slots__ = ("n", "detections", "hits")

    def __init__(self, n: int,
                 detections: List[Tuple[int, CampaignDetection]],
                 hits: List[int]) -> None:
        self.n = n
        self.detections = detections
        self.hits = hits


class CorrelationEngine:
    """Deduplicate per-vehicle noise; detect cross-fleet campaigns.

    Equivalent to :class:`ReferenceCorrelationEngine` (the property
    tests machine-check it) but O(log w) per event and bounded-memory:

    - ``_seen_ids`` and ``_last_by_key`` map to the *time* of the entry
      and are swept once the watermark has advanced past the retention
      horizon ``max_lateness_s + dedup_window_s``.  Inside that horizon
      dedup/duplicate semantics are bit-identical to the reference;
      beyond it a redelivered id can only belong to an event that the
      lateness bound drops anyway (it is then attributed to
      ``late_dropped`` instead of ``duplicate_ids`` -- same drop, same
      hygiene, bounded ledger).
    - signature windows whose newest entry can never co-occur with any
      future admissible event (``newest < watermark - max_lateness -
      window``) are dropped whole.
    """

    def __init__(
        self,
        window_s: float = 8.0,
        k: int = 3,
        dedup_window_s: float = 4.0,
        max_lateness_s: float = 2.0,
        min_severity: Asil = Asil.B,
    ) -> None:
        if k < 2:
            raise ValueError("a campaign needs k >= 2 vehicles")
        if window_s <= 0 or dedup_window_s < 0 or max_lateness_s < 0:
            raise ValueError("windows must be positive")
        self.window_s = window_s
        self.k = k
        self.dedup_window_s = dedup_window_s
        self.max_lateness_s = max_lateness_s
        self.min_severity = min_severity

        # Retention horizon for the dedup/duplicate ledgers.  The sum
        # (not the max) is the tight bound: an admissible event has
        # time >= watermark - max_lateness, so a per-vehicle timestamp
        # older than watermark - (max_lateness + dedup_window) can never
        # again satisfy |t_new - t_old| <= dedup_window.
        self._retention_s = max_lateness_s + dedup_window_s

        self._seen_ids: Dict[str, float] = {}
        self._last_by_key: Dict[Tuple[str, str], float] = {}
        # Columnar ledger chunks: drained batches arrive with their
        # ``id_time``/``key_time`` dicts already built, so the fast path
        # *appends the dict itself* instead of paying a growing-dict
        # insert per entry (the dominant per-event cost at fleet scale).
        # A bit-packed bloom filter per ledger screens a batch against
        # the chunks in a few vectorized ops (bloom-hit elements are
        # double-checked exactly); ``_fold_ledgers`` merges chunks into
        # the base dicts -- and zeroes the blooms, which by invariant
        # cover exactly the chunk contents -- whenever scalar code needs
        # per-key lookups.  Blooms allocate lazily: per-event engines
        # never pay the 2 MiB.
        self._seen_chunks: List[Dict[str, float]] = []
        self._lbk_chunks: List[Dict[Tuple[str, str], float]] = []
        self._seen_bloom: Optional[np.ndarray] = None
        self._lbk_bloom: Optional[np.ndarray] = None
        self._by_signature: Dict[str, _SignatureWindow] = {}
        self._flagged: Dict[str, CampaignDetection] = {}
        self._campaign_vehicles: Dict[str, Set[str]] = {}
        self._dirty: Set[str] = set()          # signatures changed since pop_dirty
        self._last_sweep_wm = float("-inf")

        self.watermark = float("-inf")
        self.observed = 0
        self.duplicate_ids = 0
        self.late_dropped = 0
        self.low_severity_ignored = 0
        self.deduped = 0
        self.ids_evicted = 0
        self.keys_evicted = 0
        self.windows_evicted = 0
        self.detections: List[CampaignDetection] = []

        # Columnar-path telemetry.  Deliberately *not* part of
        # ``snapshot()``: which path fed the engine is an implementation
        # detail, and including it would break the byte-identity contract
        # between columnar-, batch- and per-event-fed engines.
        self.columnar_batches = 0
        self.columnar_fallbacks = 0
        self.columnar_group_replays = 0

    # ------------------------------------------------------------------
    def observe(self, event: SecurityEvent) -> Optional[CampaignDetection]:
        """Feed one event; returns a detection the first time a signature
        crosses the k-vehicles-in-window threshold."""
        if self._seen_chunks or self._lbk_chunks:
            self._fold_ledgers()
        self.observed += 1

        t = event.time
        seen = self._seen_ids
        if event.event_id in seen:
            self.duplicate_ids += 1
            return None
        seen[event.event_id] = t

        if t < self.watermark - self.max_lateness_s:
            self.late_dropped += 1
            return None
        if t > self.watermark:
            self.watermark = t
            if t - self._last_sweep_wm >= self._retention_s:
                self._sweep()

        # Only actionable telemetry (>= min_severity) can seed a campaign
        # window -- QM/A observability noise is counted and discarded, so
        # chatter can never manufacture a fleet incident.
        if event.severity < self.min_severity:
            self.low_severity_ignored += 1
            return None

        key = (event.vehicle_id, event.signature)
        last = self._last_by_key.get(key)
        if last is not None and abs(t - last) <= self.dedup_window_s:
            self.deduped += 1
            if t > last:
                self._last_by_key[key] = t
            return None
        self._last_by_key[key] = t

        sig = event.signature
        if sig in self._flagged:
            # Campaign already open: track spread, don't re-fire.
            self._campaign_vehicles[sig].add(event.vehicle_id)
            self._dirty.add(sig)
            return None
        return self._window_insert(sig, t, event.vehicle_id)

    def observe_batch(
        self, events: Sequence[SecurityEvent]
    ) -> List[Optional[CampaignDetection]]:
        """Feed a dispatched batch; returns per-event verdicts.

        Semantically identical to ``[self.observe(e) for e in events]``
        (the Hypothesis differential pins detections, every counter, and
        the watermark), but with the hot state in locals and one Python
        call per *batch* instead of per event.
        """
        if self._seen_chunks or self._lbk_chunks:
            self._fold_ledgers()
        out: List[Optional[CampaignDetection]] = []
        append = out.append
        seen = self._seen_ids
        last_by_key = self._last_by_key
        flagged = self._flagged
        campaign_vehicles = self._campaign_vehicles
        dirty = self._dirty
        max_lateness = self.max_lateness_s
        dedup_window = self.dedup_window_s
        retention = self._retention_s
        min_severity = self.min_severity
        window_insert = self._window_insert

        observed = duplicates = late = low = deduped = 0
        for event in events:
            observed += 1
            t = event.time
            eid = event.event_id
            if eid in seen:
                duplicates += 1
                append(None)
                continue
            seen[eid] = t
            if t < self.watermark - max_lateness:
                late += 1
                append(None)
                continue
            if t > self.watermark:
                self.watermark = t
                if t - self._last_sweep_wm >= retention:
                    self._sweep()
            if event.severity < min_severity:
                low += 1
                append(None)
                continue
            key = (event.vehicle_id, event.signature)
            last = last_by_key.get(key)
            if last is not None and abs(t - last) <= dedup_window:
                deduped += 1
                if t > last:
                    last_by_key[key] = t
                append(None)
                continue
            last_by_key[key] = t
            sig = event.signature
            if sig in flagged:
                campaign_vehicles[sig].add(event.vehicle_id)
                dirty.add(sig)
                append(None)
                continue
            append(window_insert(sig, t, event.vehicle_id))

        self.observed += observed
        self.duplicate_ids += duplicates
        self.late_dropped += late
        self.low_severity_ignored += low
        self.deduped += deduped
        return out

    # ------------------------------------------------------------------
    def _window_insert(
        self, sig: str, t: float, vehicle: str
    ) -> Optional[CampaignDetection]:
        """Add one admissible observation to a signature window; prune
        incrementally; fire when k distinct vehicles co-occur."""
        w = self._by_signature.get(sig)
        if w is None:
            w = self._by_signature[sig] = _SignatureWindow()
        elif w.tail_len:
            self._fold_window(w)
        heap = w.heap
        counts = w.counts
        heappush(heap, (t, vehicle))
        counts[vehicle] = counts.get(vehicle, 0) + 1
        if t > w.newest:
            w.newest = t
        # Closed window: entries exactly window_s old still co-occur;
        # strictly older ones expire.  The heap's top is always the
        # oldest live entry, so expiry never rescans the window.
        cutoff = w.newest - self.window_s
        while heap[0][0] < cutoff:
            _, gone = heappop(heap)
            c = counts[gone] - 1
            if c:
                counts[gone] = c
            else:
                del counts[gone]
        self._dirty.add(sig)
        if len(counts) < self.k:
            return None

        detection = CampaignDetection(
            signature=sig,
            detect_time=t,
            first_time=heap[0][0],
            vehicles=tuple(sorted(counts)),
            window_s=self.window_s,
            k=self.k,
        )
        self._flagged[sig] = detection
        self._campaign_vehicles[sig] = set(counts)
        del self._by_signature[sig]
        self.detections.append(detection)
        return detection

    def _sweep(self) -> None:
        """Evict dedup/duplicate ledger entries past the retention
        horizon and signature windows that can never fire again.

        Amortized O(1) per observe: a sweep runs only once per
        ``_retention_s`` of watermark advance, and an entry is examined
        by at most two sweeps before eviction.
        """
        if self._seen_chunks or self._lbk_chunks:
            self._fold_ledgers()
        wm = self.watermark
        self._last_sweep_wm = wm
        horizon = wm - self._retention_s
        seen = self._seen_ids
        stale_ids = [eid for eid, t in seen.items() if t < horizon]
        for eid in stale_ids:
            del seen[eid]
        self.ids_evicted += len(stale_ids)
        last = self._last_by_key
        stale_keys = [key for key, t in last.items() if t < horizon]
        for key in stale_keys:
            del last[key]
        self.keys_evicted += len(stale_keys)
        # A window whose newest entry is older than this can never share
        # a closed window with any future admissible (in-lateness) event,
        # so dropping it whole is invisible to detection semantics.
        window_horizon = wm - self.max_lateness_s - self.window_s
        windows = self._by_signature
        stale_sigs = [s for s, w in windows.items() if w.newest < window_horizon]
        for s in stale_sigs:
            del windows[s]
        self.windows_evicted += len(stale_sigs)

    # ------------------------------------------------------------------
    # Columnar fast path (numpy structured batches from the drain)
    # ------------------------------------------------------------------
    def _fold_window(self, w: _SignatureWindow) -> None:
        """Materialize a window's columnar tail chunks into the exact
        scalar state (``heap``/``counts``), pruning against the current
        ``newest`` -- the live set only depends on the final newest, so
        deferred pruning folds to precisely what per-event pruning would
        have left."""
        heap = w.heap
        counts = w.counts
        cutoff = w.newest - self.window_s
        # The base heap may predate columnar appends that advanced newest.
        while heap and heap[0][0] < cutoff:
            _, gone = heappop(heap)
            c = counts[gone] - 1
            if c:
                counts[gone] = c
            else:
                del counts[gone]
        get = counts.get
        for t_a, v_a, t_first, t_last, _count in w.tail:
            if t_last < cutoff:
                continue  # whole chunk expired while lazily retained
            if t_first < cutoff:
                s = int(np.searchsorted(t_a, cutoff, side="left"))
                t_a = t_a[s:]
                v_a = v_a[s:]
            vl = v_a.tolist()
            # Chunks are ascending and >= every live heap entry, so
            # extending preserves the heap invariant (no heapify).
            heap.extend(zip(t_a.tolist(), vl))
            for v in vl:
                counts[v] = get(v, 0) + 1
        w.tail = []
        w.tail_len = 0

    def _fold_ledgers(self) -> None:
        """Merge columnar ledger chunks into the base dicts.

        Chunks are pairwise disjoint and disjoint from the base (the
        fast path screens before appending), so the merge is a plain
        union -- byte-identical to having inserted per-event.  Runs
        before any code that needs exact per-key lookups: scalar
        observes, retention sweeps, dedup-ledger hits, snapshots.
        """
        if self._seen_chunks:
            base = self._seen_ids
            for chunk in self._seen_chunks:
                base.update(chunk)
            self._seen_chunks = []
            self._seen_bloom.fill(0)
        if self._lbk_chunks:
            base_k = self._last_by_key
            for chunk_k in self._lbk_chunks:
                base_k.update(chunk_k)
            self._lbk_chunks = []
            self._lbk_bloom.fill(0)

    def observe_columnar(self, batch: "ColumnarBatch",
                         track_hits: bool = False) -> ColumnarResult:
        """Feed one drained :class:`~repro.soc.columnar.ColumnarBatch`.

        Semantically identical to ``observe_batch(batch.events)`` -- the
        differential/Hypothesis suite pins byte-identical ``snapshot()``
        state, counters included -- but the batch-wide work (duplicate
        screening, lateness, severity, dedup-ledger maintenance,
        per-signature grouping, window appends) runs as C-level dict and
        numpy operations.  Rare hazards route to exact scalar code:

        - within-batch duplicate ids/dedup keys, or overlap between the
          batch's ids and the seen-ledger -> whole-batch scalar fallback;
        - a retention sweep tripping mid-batch -> the batch splits at the
          tripping event, which is observed scalar (sweeps are amortized
          once per ``retention_s`` of watermark advance);
        - a group that could possibly fire, arrive out of order, or land
          behind its window's newest -> that signature's slice replays
          through the scalar insert path.
        """
        n = batch.n
        if n == 0:
            return ColumnarResult(0, [], [])
        self.columnar_batches += 1
        d0 = len(self.detections)
        if self._seen_bloom is None:
            self._seen_bloom = np.zeros(BLOOM_BYTES, dtype=np.uint8)
            self._lbk_bloom = np.zeros(BLOOM_BYTES, dtype=np.uint8)
        elif (len(self._seen_chunks) >= _MAX_LEDGER_CHUNKS
                or len(self._lbk_chunks) >= _MAX_LEDGER_CHUNKS):
            self._fold_ledgers()
        hazard = n < COLUMNAR_MIN_BATCH or not batch.ids_unique
        if not hazard and self._seen_chunks:
            hits = self._seen_bloom[batch.id_bloom_byte] & batch.id_bloom_bit
            if hits.any():
                # Bloom hits are only *suspects*: confirm each against
                # the chunk dicts; any true hit is a real duplicate id.
                eids = batch.eid_list
                seen_chunks = self._seen_chunks
                for i in np.flatnonzero(hits).tolist():
                    eid = eids[i]
                    if any(eid in chunk for chunk in reversed(seen_chunks)):
                        hazard = True
                        break
        if not hazard and self._seen_ids:
            base = self._seen_ids
            if len(base) <= n:
                # dict-keys isdisjoint iterates its *argument*: probe
                # the smaller side into the larger dict.
                hazard = not batch.id_time.keys().isdisjoint(base)
            else:
                hazard = not base.keys().isdisjoint(batch.id_time)
        if not hazard and not batch.keys_unique:
            # Repeated dedup keys are handled columnar only on the clean
            # full-span path (sequential suspect resolution); any chance
            # of a sweep split or an admission mask routes the batch to
            # exact scalar code instead.
            wm = self.watermark
            hazard = (
                (batch.t_max > wm
                 and batch.t_max - self._last_sweep_wm >= self._retention_s)
                or batch.t_min < max(batch.t_max, wm) - self.max_lateness_s
                or batch.sev_min < int(self.min_severity))
        if hazard:
            self.columnar_fallbacks += 1
            fired = self._scalar_span(batch, 0, n)
        else:
            fired = []
            events = batch.events
            start = 0
            while start < n:
                stop, c = self._next_sweep_trip(batch, start)
                if stop > start:
                    fired.extend(self._columnar_span(batch, start, stop, c))
                if stop >= n:
                    break
                # The tripping event runs scalar: its observe() advances
                # the watermark and performs the sweep exactly in-order.
                d = self.observe(events[stop])
                if d is not None:
                    fired.append((stop, d))
                start = stop + 1
        if len(fired) > 1:
            fired.sort()
            # Group-major processing can fire out of batch order; restore
            # the per-event append order detections snapshots pin.
            self.detections[d0:] = [d for _, d in fired]
        hits: List[int] = []
        if track_hits and self._flagged:
            ids = batch.interner.ids
            flagged_ids = np.array(
                [ids.get(s, -1) for s in self._flagged], dtype=np.int64)
            mask = np.isin(batch.sig_ids, flagged_ids)
            if mask.any():
                fired_at = {i for i, _ in fired}
                hits = [i for i in np.flatnonzero(mask).tolist()
                        if i not in fired_at]
        return ColumnarResult(n, fired, hits)

    def _next_sweep_trip(self, batch: "ColumnarBatch",
                         start: int) -> Tuple[int, Optional[np.ndarray]]:
        """Index of the next event that would trigger a retention sweep
        (or batch end), plus the running-watermark prefix when it had to
        be computed (``None`` means no event in the span can be late).

        Between sweeps ``watermark - last_sweep_wm < retention`` holds,
        so an event trips iff it advances the watermark to ``t`` with
        ``t - last_sweep_wm >= retention`` -- on the cumulative max both
        conditions are monotone, so the first tripping index is exact.
        """
        wm = self.watermark
        lsw = self._last_sweep_wm
        retention = self._retention_s
        t_max = batch.t_max if start == 0 else max(batch.t_list[start:])
        if not (t_max > wm and t_max - lsw >= retention):
            return batch.n, None
        c = np.maximum.accumulate(batch.t[start:])
        trip = (c > wm) & ((c - lsw) >= retention)
        j = int(np.argmax(trip))
        return start + j, c[:j] if j else None

    def _scalar_span(self, batch: "ColumnarBatch", a: int,
                     b: int) -> List[Tuple[int, CampaignDetection]]:
        verdicts = self.observe_batch(
            batch.events[a:b] if (a, b) != (0, batch.n) else batch.events)
        return [(a + i, d) for i, d in enumerate(verdicts) if d is not None]

    def _columnar_span(
        self, batch: "ColumnarBatch", a: int, b: int,
        c: Optional[np.ndarray],
    ) -> List[Tuple[int, CampaignDetection]]:
        """Vectorized observe of ``events[a:b]`` -- no sweep can trip in
        the span, batch ids/keys are unique, and none collide with the
        seen-ledger (the caller checked)."""
        n = batch.n
        full = (a, b) == (0, n)
        t_list = batch.t_list
        wm0 = self.watermark

        # --- duplicate-id ledger: adopt the drain-built dict as a chunk
        # (ids pre-screened unique and disjoint from base + chunks), so
        # the span pays zero per-entry insert cost here.
        if full:
            self._seen_chunks.append(batch.id_time)
            np.bitwise_or.at(self._seen_bloom, batch.id_bloom_byte,
                             batch.id_bloom_bit)
        else:
            self._seen_chunks.append(
                dict(zip(batch.eid_list[a:b], t_list[a:b])))
            np.bitwise_or.at(self._seen_bloom, batch.id_bloom_byte[a:b],
                             batch.id_bloom_bit[a:b])

        # --- lateness + watermark ------------------------------------
        t_min = batch.t_min if full else min(t_list[a:b])
        t_max = batch.t_max if full else max(t_list[a:b])
        late = None
        n_late = 0
        # No event can be late if even the final watermark leaves the
        # oldest event inside the bound (prefix watermarks are <= t_max).
        if t_min < max(t_max, wm0) - self.max_lateness_s:
            if c is None:
                c = np.maximum.accumulate(batch.t[a:b])
            # Per-event watermark before event i is max(wm0, cummax of
            # the span's earlier times) -- the running max alone would
            # under-flag lateness whenever wm0 leads the span.
            prefix = np.empty(b - a, dtype=np.float64)
            prefix[0] = wm0
            np.maximum(c[: b - a - 1], wm0, out=prefix[1:])
            late = batch.t[a:b] < prefix - self.max_lateness_s
            n_late = int(late.sum())
            if n_late == 0:
                late = None
        if t_max > wm0:
            self.watermark = t_max

        # --- severity floor ------------------------------------------
        min_sev = int(self.min_severity)
        low = None
        n_low = 0
        if (batch.sev_min if full else int(batch.sev[a:b].min())) < min_sev:
            low = batch.sev[a:b] < min_sev
            if late is not None:
                low &= ~late
            n_low = int(low.sum())
            if n_low == 0:
                low = None

        admitted: Optional[np.ndarray] = None
        if late is not None or low is not None:
            admitted = np.ones(b - a, dtype=bool)
            if late is not None:
                admitted &= ~late
            if low is not None:
                admitted &= ~low

        # --- per-vehicle dedup ledger --------------------------------
        lbk = self._last_by_key
        n_dedup = 0
        if full and admitted is None:
            hits = self._lbk_bloom[batch.key_bloom_byte] & batch.key_bloom_bit
            any_hits = bool(hits.any())
            base_overlap = False
            if lbk:
                if len(lbk) <= n:
                    base_overlap = \
                        not batch.key_time.keys().isdisjoint(lbk)
                else:
                    base_overlap = \
                        not lbk.keys().isdisjoint(batch.key_time)
            if batch.keys_unique and not any_hits and not base_overlap:
                self._lbk_chunks.append(batch.key_time)
                np.bitwise_or.at(self._lbk_bloom, batch.key_bloom_byte,
                                 batch.key_bloom_bit)
            elif not base_overlap:
                # Chunk (or within-batch) key hits only: resolve just
                # the suspect keys exactly, adopt the rest as a chunk.
                suspects = np.flatnonzero(hits).tolist()
                if batch.dup_key_idx:
                    suspects = sorted({*suspects, *batch.dup_key_idx}) \
                        if suspects else batch.dup_key_idx
                admitted, n_dedup = self._columnar_dedup_chunked(
                    batch, suspects)
            elif batch.keys_unique:
                # Base-ledger hits: exact vectorized dedup on the folded
                # base (the steady state for dedup-heavy streams).
                self._fold_ledgers()
                admitted, n_dedup = self._columnar_dedup(batch, a, b, None)
            else:
                # Base hits *and* repeated in-batch keys: every possibly
                # colliding key resolves exactly, in stream order.
                sus = set(np.flatnonzero(hits).tolist())
                sus.update(batch.dup_key_idx)
                sus.update(i for i, key in enumerate(batch.keys)
                           if key in lbk)
                admitted, n_dedup = self._columnar_dedup_chunked(
                    batch, sorted(sus))
        else:
            # Partial/masked spans (sweep splits, filtered events):
            # chunk-append like the full path -- the hazard gate routes
            # repeated-key batches away from split/masked processing, so
            # span keys are unique -- and fold to exact dict operations
            # on any suspected collision.
            chunk_hit = False
            if self._lbk_chunks:
                hits = (self._lbk_bloom[batch.key_bloom_byte[a:b]]
                        & batch.key_bloom_bit[a:b])
                if admitted is not None:
                    # hits holds bloom *bit masks* (any nonzero byte is a
                    # hit) -- AND-ing the bool mask directly would erase
                    # every hit whose bloom bit isn't bit 0.
                    hits[~admitted] = 0
                chunk_hit = bool(hits.any())
            span_keys = {batch.keys[i]: t_list[i]
                         for i in range(a, b)
                         if admitted is None or admitted[i - a]}
            base_overlap = False
            if lbk and span_keys:
                if len(lbk) <= len(span_keys):
                    base_overlap = not span_keys.keys().isdisjoint(lbk)
                else:
                    base_overlap = not lbk.keys().isdisjoint(span_keys)
            if not chunk_hit and not base_overlap:
                if span_keys:
                    self._lbk_chunks.append(span_keys)
                    np.bitwise_or.at(self._lbk_bloom,
                                     batch.key_bloom_byte[a:b],
                                     batch.key_bloom_bit[a:b])
            else:
                self._fold_ledgers()
                if lbk.keys().isdisjoint(span_keys):
                    lbk.update(span_keys)
                else:
                    admitted, n_dedup = self._columnar_dedup(batch, a, b,
                                                             admitted)

        self.observed += b - a
        self.late_dropped += n_late
        self.low_severity_ignored += n_low
        self.deduped += n_dedup

        # --- per-signature grouping + window appends -----------------
        if full and admitted is None:
            order = batch.order
            bounds = batch.group_bounds
            gsigs = batch.group_sigs
        else:
            order = batch.order
            if not full:
                order = order[(order >= a) & (order < b)]
            if admitted is not None:
                order = order[admitted[order - a]]
            if order.size == 0:
                return []
            sig_sorted = batch.sig_ids[order]
            cuts = np.flatnonzero(sig_sorted[1:] != sig_sorted[:-1]) + 1
            bounds = [0, *cuts.tolist(), int(order.size)]
            table = batch.interner.table
            gsigs = [table[sig_sorted[i]] for i in bounds[:-1]]

        t_srt = batch.t[order]
        v_srt = batch.veh_obj[order]
        in_order = batch.times_sorted

        flagged = self._flagged
        campaign_vehicles = self._campaign_vehicles
        by_sig = self._by_signature
        dirty = self._dirty
        window_s = self.window_s
        k = self.k
        fired: List[Tuple[int, CampaignDetection]] = []

        for gi, sig in enumerate(gsigs):
            ga = bounds[gi]
            gb = bounds[gi + 1]
            if flagged and sig in flagged:
                campaign_vehicles[sig].update(v_srt[ga:gb].tolist())
                dirty.add(sig)
                continue
            w = by_sig.get(sig)
            if w is None:
                w = by_sig[sig] = _SignatureWindow()
            tg = t_srt[ga:gb]
            gcount = gb - ga
            if ((not in_order and not bool(np.all(tg[1:] >= tg[:-1])))
                    or tg[0] < w.newest
                    or len(w.counts) + w.tail_len + gcount >= k):
                fired.extend(self._replay_group(sig, w, order[ga:gb], batch))
                continue
            t_last = float(tg[gcount - 1])
            if t_last > w.newest:
                w.newest = t_last
            cutoff = w.newest - window_s
            heap = w.heap
            if heap and heap[0][0] < cutoff:
                counts = w.counts
                while heap and heap[0][0] < cutoff:
                    _, gone = heappop(heap)
                    cnt = counts[gone] - 1
                    if cnt:
                        counts[gone] = cnt
                    else:
                        del counts[gone]
            tail = w.tail
            while tail and tail[0][3] < cutoff:
                w.tail_len -= tail[0][4]
                del tail[0]
            tail.append((tg, v_srt[ga:gb], float(tg[0]), t_last, gcount))
            w.tail_len += gcount
            dirty.add(sig)
        return fired

    def _columnar_dedup_chunked(
        self, batch: "ColumnarBatch", suspects: List[int],
    ) -> Tuple[Optional[np.ndarray], int]:
        """Dedup a clean full span against the chunked ledger without
        folding: only *suspect* keys (bloom-screen hits, base-dict hits,
        within-batch repeats -- the caller collects them, in stream
        order) get exact lookups, walked sequentially so later
        occurrences see earlier ones' ledger effect; everything else is
        adopted in bulk as a chunk, exactly like the clean path.
        """
        keys = batch.keys
        t_list = batch.t_list
        base = self._last_by_key
        chunks = self._lbk_chunks
        dw = self.dedup_window_s
        span_chunk = batch.key_time
        copied = False
        resolved: Dict[Tuple[str, str], float] = {}
        drop: List[int] = []
        for i in suspects:
            key = keys[i]
            t = t_list[i]
            last = resolved.get(key)
            if last is None:
                for chunk in reversed(chunks):
                    last = chunk.get(key)
                    if last is not None:
                        break
                if last is None and base:
                    last = base.get(key)
            if last is not None and abs(t - last) <= dw:
                drop.append(i)
                resolved[key] = t if t > last else last
            else:
                resolved[key] = t
        # The drain-built dict holds each key's last-occurrence time
        # unconditionally; overwrite where the exact walk disagrees
        # (identity check: admitted non-dup keys resolve to the very
        # float object already stored, so they skip the copy).
        for key, v in resolved.items():
            if span_chunk[key] is not v:
                if not copied:
                    span_chunk = dict(span_chunk)
                    copied = True
                span_chunk[key] = v
        chunks.append(span_chunk)
        np.bitwise_or.at(self._lbk_bloom, batch.key_bloom_byte,
                         batch.key_bloom_bit)
        if not drop:
            return None, 0
        admitted = np.ones(batch.n, dtype=bool)
        admitted[drop] = False
        return admitted, len(drop)

    def _columnar_dedup(
        self, batch: "ColumnarBatch", a: int, b: int,
        admitted: Optional[np.ndarray],
    ) -> Tuple[np.ndarray, int]:
        """Vectorized dedup against a ledger with hits: per-key lookups
        in one C-level pass, threshold compare as a mask (batch keys are
        unique, so there is no within-batch ledger interaction)."""
        keys = batch.keys if (a, b) == (0, batch.n) else batch.keys[a:b]
        t_list = batch.t_list if (a, b) == (0, batch.n) \
            else batch.t_list[a:b]
        lbk = self._last_by_key
        lasts = list(map(lbk.get, keys))
        la = np.array([x if x is not None else np.nan for x in lasts],
                      dtype=np.float64)
        if admitted is None:
            admitted = np.ones(b - a, dtype=bool)
        hit = admitted & ~np.isnan(la)
        dmask = hit & (np.abs(batch.t[a:b] - la) <= self.dedup_window_s)
        n_dedup = int(dmask.sum())
        if n_dedup:
            for i in np.flatnonzero(dmask).tolist():
                if t_list[i] > lasts[i]:
                    lbk[keys[i]] = t_list[i]
            admitted = admitted & ~dmask
            lbk.update((keys[i], t_list[i])
                       for i in np.flatnonzero(admitted).tolist())
        else:
            lbk.update((keys[i], t_list[i])
                       for i in np.flatnonzero(admitted).tolist())
        return admitted, n_dedup

    def _replay_group(
        self, sig: str, w: _SignatureWindow, idx: np.ndarray,
        batch: "ColumnarBatch",
    ) -> List[Tuple[int, CampaignDetection]]:
        """Exact scalar replay of one signature's admitted slice -- the
        window could fire (or received out-of-order times), so every
        insert needs the per-event prune/threshold check."""
        self.columnar_group_replays += 1
        if w.tail_len:
            self._fold_window(w)
        out: List[Tuple[int, CampaignDetection]] = []
        events = batch.events
        flagged = self._flagged
        insert = self._window_insert
        for i in idx.tolist():
            e = events[i]
            if sig in flagged:
                self._campaign_vehicles[sig].add(e.vehicle_id)
                self._dirty.add(sig)
                continue
            d = insert(sig, e.time, e.vehicle_id)
            if d is not None:
                out.append((i, d))
        return out

    # ------------------------------------------------------------------
    # Snapshot / restore (the durable-store recovery contract)
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Canonical JSON-safe dump of *all* correlator state.

        Canonical means deterministically ordered (sets and dicts are
        serialized sorted, heaps in sorted order -- equal-element heap
        layout is unobservable, so a sorted list restores identical
        behavior), which makes two semantically equal engines produce
        byte-identical snapshots: the property the crash-recovery
        differential tests compare on.  ``detections`` keeps its append
        order -- :class:`GlobalCampaignMerger` cursors index into it.
        """
        if self._seen_chunks or self._lbk_chunks:
            self._fold_ledgers()
        for w in self._by_signature.values():
            if w.tail_len:
                self._fold_window(w)
        return {
            "config": {
                "window_s": self.window_s,
                "k": self.k,
                "dedup_window_s": self.dedup_window_s,
                "max_lateness_s": self.max_lateness_s,
                "min_severity": int(self.min_severity),
            },
            "watermark": _enc_time(self.watermark),
            "last_sweep_wm": _enc_time(self._last_sweep_wm),
            "seen_ids": sorted([eid, t] for eid, t in self._seen_ids.items()),
            "last_by_key": sorted(
                [v, s, t] for (v, s), t in self._last_by_key.items()),
            "windows": sorted(
                [sig, {"heap": sorted([t, v] for t, v in w.heap),
                       "counts": sorted([v, c] for v, c in w.counts.items()),
                       "newest": _enc_time(w.newest)}]
                for sig, w in self._by_signature.items()),
            "flagged": [self._flagged[s].as_dict()
                        for s in sorted(self._flagged)],
            "campaign_vehicles": sorted(
                [sig, sorted(vehicles)]
                for sig, vehicles in self._campaign_vehicles.items()),
            "dirty": sorted(self._dirty),
            "detections": [d.as_dict() for d in self.detections],
            "counters": {
                "observed": self.observed,
                "duplicate_ids": self.duplicate_ids,
                "late_dropped": self.late_dropped,
                "low_severity_ignored": self.low_severity_ignored,
                "deduped": self.deduped,
                "ids_evicted": self.ids_evicted,
                "keys_evicted": self.keys_evicted,
                "windows_evicted": self.windows_evicted,
            },
        }

    @classmethod
    def from_snapshot(cls, state: Dict[str, object]) -> "CorrelationEngine":
        """Rebuild an engine whose future behavior is indistinguishable
        from the snapshotted one (pinned by the recovery differentials)."""
        cfg = state["config"]
        engine = cls(
            window_s=cfg["window_s"], k=cfg["k"],
            dedup_window_s=cfg["dedup_window_s"],
            max_lateness_s=cfg["max_lateness_s"],
            min_severity=Asil(cfg["min_severity"]),
        )
        engine.watermark = _dec_time(state["watermark"])
        engine._last_sweep_wm = _dec_time(state["last_sweep_wm"])
        engine._seen_ids = {eid: t for eid, t in state["seen_ids"]}
        engine._last_by_key = {(v, s): t for v, s, t in state["last_by_key"]}
        for sig, wobj in state["windows"]:
            w = _SignatureWindow()
            # A sorted list satisfies the heap invariant as-is.
            w.heap = [(t, v) for t, v in wobj["heap"]]
            w.counts = {v: c for v, c in wobj["counts"]}
            w.newest = _dec_time(wobj["newest"])
            engine._by_signature[sig] = w
        for dobj in state["flagged"]:
            detection = CampaignDetection.from_dict(dobj)
            engine._flagged[detection.signature] = detection
        engine._campaign_vehicles = {
            sig: set(vehicles)
            for sig, vehicles in state["campaign_vehicles"]}
        engine._dirty = set(state["dirty"])
        engine.detections = [CampaignDetection.from_dict(d)
                             for d in state["detections"]]
        counters = state["counters"]
        engine.observed = counters["observed"]
        engine.duplicate_ids = counters["duplicate_ids"]
        engine.late_dropped = counters["late_dropped"]
        engine.low_severity_ignored = counters["low_severity_ignored"]
        engine.deduped = counters["deduped"]
        engine.ids_evicted = counters["ids_evicted"]
        engine.keys_evicted = counters["keys_evicted"]
        engine.windows_evicted = counters["windows_evicted"]
        return engine

    # ------------------------------------------------------------------
    # Shard-local merge support
    # ------------------------------------------------------------------
    def is_flagged(self, signature: str) -> bool:
        return signature in self._flagged

    def pop_dirty(self) -> Set[str]:
        """Signatures whose window/campaign state changed since the last
        call -- the merger's incremental work list."""
        dirty = self._dirty
        self._dirty = set()
        return dirty

    def pending_entries(self, signature: str) -> List[Tuple[float, str]]:
        """Live (time, vehicle) entries of an un-flagged window (pruned
        against this engine's own newest; a merger re-prunes globally)."""
        w = self._by_signature.get(signature)
        if w is None:
            return []
        if w.tail_len:
            self._fold_window(w)
        return list(w.heap)

    def adopt_campaign(self, detection: CampaignDetection) -> None:
        """Accept a fleet-wide verdict from a merger: flag the signature
        locally so subsequent events attribute spread exactly, and fold
        any pending window into the campaign's vehicle set."""
        sig = detection.signature
        if sig in self._flagged:
            return
        self._flagged[sig] = detection
        vehicles = self._campaign_vehicles.setdefault(sig, set())
        w = self._by_signature.pop(sig, None)
        if w is not None:
            if w.tail_len:
                self._fold_window(w)
            vehicles.update(w.counts)
        self._dirty.add(sig)

    # ------------------------------------------------------------------
    @property
    def flagged_signatures(self) -> Tuple[str, ...]:
        return tuple(self._flagged)

    def campaign_vehicles(self, signature: str) -> Set[str]:
        """All vehicles attributed to a flagged campaign so far."""
        return set(self._campaign_vehicles.get(signature, set()))

    def pending_vehicles(self, signature: str) -> Set[str]:
        """Distinct vehicles currently in the (un-flagged) window."""
        w = self._by_signature.get(signature)
        if w is None:
            return set()
        if w.tail_len:
            self._fold_window(w)
        return set(w.counts)

    def metrics(self) -> Dict[str, float]:
        return {
            "observed": float(self.observed),
            "duplicate_ids": float(self.duplicate_ids),
            "late_dropped": float(self.late_dropped),
            "low_severity_ignored": float(self.low_severity_ignored),
            "deduped": float(self.deduped),
            "campaigns_flagged": float(len(self._flagged)),
        }


class ReferenceCorrelationEngine:
    """The original per-event correlator, kept verbatim as the
    executable specification.

    Every observe rebuilds the distinct-vehicle set and rescans the
    window maximum -- O(w) per event -- and its dedup/duplicate ledgers
    grow without bound.  It exists so that (a) the Hypothesis
    differential tests can prove :class:`CorrelationEngine` equivalent
    inside the retention horizon, and (b) the E17 bench can report the
    batched fast path's speedup against the *same-run* per-event
    baseline (``BENCH_E17.json``).
    """

    def __init__(
        self,
        window_s: float = 8.0,
        k: int = 3,
        dedup_window_s: float = 4.0,
        max_lateness_s: float = 2.0,
        min_severity: Asil = Asil.B,
    ) -> None:
        if k < 2:
            raise ValueError("a campaign needs k >= 2 vehicles")
        if window_s <= 0 or dedup_window_s < 0 or max_lateness_s < 0:
            raise ValueError("windows must be positive")
        self.window_s = window_s
        self.k = k
        self.dedup_window_s = dedup_window_s
        self.max_lateness_s = max_lateness_s
        self.min_severity = min_severity

        self._seen_ids: Set[str] = set()
        self._last_by_key: Dict[Tuple[str, str], float] = {}
        self._by_signature: Dict[str, Deque[Tuple[float, str]]] = {}
        self._flagged: Dict[str, CampaignDetection] = {}
        self._campaign_vehicles: Dict[str, Set[str]] = {}

        self.watermark = float("-inf")
        self.observed = 0
        self.duplicate_ids = 0
        self.late_dropped = 0
        self.low_severity_ignored = 0
        self.deduped = 0
        self.detections: List[CampaignDetection] = []

    # ------------------------------------------------------------------
    def observe(self, event: SecurityEvent) -> Optional[CampaignDetection]:
        self.observed += 1

        if event.event_id in self._seen_ids:
            self.duplicate_ids += 1
            return None
        self._seen_ids.add(event.event_id)

        if event.time < self.watermark - self.max_lateness_s:
            self.late_dropped += 1
            return None
        if event.time > self.watermark:
            self.watermark = event.time

        if event.severity < self.min_severity:
            self.low_severity_ignored += 1
            return None

        key = (event.vehicle_id, event.signature)
        last = self._last_by_key.get(key)
        if last is not None and abs(event.time - last) <= self.dedup_window_s:
            self.deduped += 1
            self._last_by_key[key] = max(last, event.time)
            return None
        self._last_by_key[key] = event.time

        if event.signature in self._flagged:
            self._campaign_vehicles[event.signature].add(event.vehicle_id)
            return None

        entries = self._by_signature.setdefault(event.signature, deque())
        entries.append((event.time, event.vehicle_id))
        entries = self._prune(event.signature)

        vehicles = {v for _, v in entries}
        if len(vehicles) < self.k:
            return None

        detection = CampaignDetection(
            signature=event.signature,
            detect_time=event.time,
            first_time=min(t for t, _ in entries),
            vehicles=tuple(sorted(vehicles)),
            window_s=self.window_s,
            k=self.k,
        )
        self._flagged[event.signature] = detection
        self._campaign_vehicles[event.signature] = set(vehicles)
        self._by_signature.pop(event.signature, None)
        self.detections.append(detection)
        return detection

    def _prune(self, signature: str) -> Deque[Tuple[float, str]]:
        entries = self._by_signature[signature]
        if not entries:
            return entries
        newest = max(t for t, _ in entries)
        cutoff = newest - self.window_s
        if any(t < cutoff for t, _ in entries):
            entries = deque((t, v) for t, v in entries if t >= cutoff)
            self._by_signature[signature] = entries
        return entries

    # ------------------------------------------------------------------
    @property
    def flagged_signatures(self) -> Tuple[str, ...]:
        return tuple(self._flagged)

    def campaign_vehicles(self, signature: str) -> Set[str]:
        return set(self._campaign_vehicles.get(signature, set()))

    def pending_vehicles(self, signature: str) -> Set[str]:
        return {v for _, v in self._by_signature.get(signature, ())}

    def metrics(self) -> Dict[str, float]:
        return {
            "observed": float(self.observed),
            "duplicate_ids": float(self.duplicate_ids),
            "late_dropped": float(self.late_dropped),
            "low_severity_ignored": float(self.low_severity_ignored),
            "deduped": float(self.deduped),
            "campaigns_flagged": float(len(self._flagged)),
        }


class GlobalCampaignMerger:
    """Stitches shard-local :class:`CorrelationEngine` state into
    fleet-wide campaigns.

    With signature-keyed sharding a campaign lives wholly on one shard,
    so a local detection *is* the fleet verdict and the merger merely
    forwards it.  With region-keyed sharding one signature's vehicles
    spread across shards and no single engine may ever reach ``k``; the
    merger therefore also combines the engines' *pending* window entries
    -- re-pruned against the global newest, same closed-window semantics
    -- and fires when the cross-shard distinct-vehicle union reaches
    ``k``.

    The merge is incremental: engines mark signatures dirty as their
    state changes (:meth:`CorrelationEngine.pop_dirty`) and expose new
    local detections through a per-engine cursor, so one merge pass
    costs O(changed signatures), not O(all signatures ever seen).

    :meth:`merge` returns ``(new_detections, new_vehicles)`` where
    ``new_vehicles`` maps already-flagged signatures to vehicles newly
    attributed since the previous merge -- the spread-accounting delta an
    incident tracker consumes without rescanning whole campaigns.
    """

    def __init__(self, window_s: float = 8.0, k: int = 3) -> None:
        if k < 2:
            raise ValueError("a campaign needs k >= 2 vehicles")
        if window_s <= 0:
            raise ValueError("window must be positive")
        self.window_s = window_s
        self.k = k
        self._flagged: Dict[str, CampaignDetection] = {}
        self._campaign_vehicles: Dict[str, Set[str]] = {}
        self._cursors: List[int] = []
        self.detections: List[CampaignDetection] = []
        self.merges = 0
        self.adopted = 0
        self.adoptions_deduped = 0

    # ------------------------------------------------------------------
    def merge(
        self, engines: Sequence[CorrelationEngine]
    ) -> Tuple[List[CampaignDetection], Dict[str, Set[str]]]:
        """One incremental stitch over the shard-local engines."""
        self.merges += 1
        while len(self._cursors) < len(engines):
            self._cursors.append(0)

        new_detections: List[CampaignDetection] = []
        new_vehicles: Dict[str, Set[str]] = {}
        dirty: Set[str] = set()
        local_detections: List[CampaignDetection] = []
        for index, engine in enumerate(engines):
            fresh = engine.detections[self._cursors[index]:]
            if fresh:
                local_detections.extend(fresh)
                self._cursors[index] = len(engine.detections)
            dirty |= engine.pop_dirty()

        # 1. Local detections: already-proven campaigns.  Extend the
        #    verdict with other shards' in-window pending vehicles (only
        #    relevant under region sharding; empty under signature
        #    sharding, where the merged detection equals the local one).
        for local in local_detections:
            sig = local.signature
            dirty.discard(sig)
            if sig in self._flagged:
                self._attribute(sig, set(local.vehicles), new_vehicles)
                continue
            entries = self._pending(engines, sig)
            cutoff = local.detect_time - self.window_s
            in_window = [(t, v) for t, v in entries if t >= cutoff]
            vehicles = set(local.vehicles) | {v for _, v in in_window}
            merged = CampaignDetection(
                signature=sig,
                detect_time=local.detect_time,
                first_time=min([local.first_time] + [t for t, _ in in_window]),
                vehicles=tuple(sorted(vehicles)),
                window_s=self.window_s,
                k=self.k,
            )
            self._fire(merged, vehicles | {v for _, v in entries})
            new_detections.append(merged)

        # 2. Dirty signatures without a local verdict: the cross-shard
        #    sub-threshold stitch region sharding needs.
        for sig in sorted(dirty):
            if sig in self._flagged:
                combined: Set[str] = set()
                for engine in engines:
                    combined |= engine.campaign_vehicles(sig)
                    combined |= engine.pending_vehicles(sig)
                self._attribute(sig, combined, new_vehicles)
                continue
            entries = self._pending(engines, sig)
            if not entries:
                continue
            newest = max(t for t, _ in entries)
            cutoff = newest - self.window_s
            in_window = [(t, v) for t, v in entries if t >= cutoff]
            vehicles = {v for _, v in in_window}
            if len(vehicles) < self.k:
                continue
            detection = CampaignDetection(
                signature=sig,
                detect_time=newest,
                first_time=min(t for t, _ in in_window),
                vehicles=tuple(sorted(vehicles)),
                window_s=self.window_s,
                k=self.k,
            )
            self._fire(detection, {v for _, v in entries})
            new_detections.append(detection)
        return new_detections, new_vehicles

    # ------------------------------------------------------------------
    @staticmethod
    def _pending(
        engines: Sequence[CorrelationEngine], signature: str
    ) -> List[Tuple[float, str]]:
        entries: List[Tuple[float, str]] = []
        for engine in engines:
            entries.extend(engine.pending_entries(signature))
        return entries

    def _fire(self, detection: CampaignDetection, vehicles: Set[str]) -> None:
        self._flagged[detection.signature] = detection
        self._campaign_vehicles[detection.signature] = set(vehicles)
        self.detections.append(detection)

    def _attribute(
        self, signature: str, vehicles: Set[str],
        new_vehicles: Dict[str, Set[str]],
    ) -> None:
        known = self._campaign_vehicles[signature]
        delta = vehicles - known
        if delta:
            known |= delta
            new_vehicles.setdefault(signature, set()).update(delta)

    def adopt_campaign(
        self, detection: CampaignDetection
    ) -> Optional[CampaignDetection]:
        """Accept an externally-proven verdict (a federated peer region
        announcing a campaign it already fired).

        Idempotent across regions: the *first* adoption of a signature
        flags it and appends to ``detections`` (returning the adopted
        verdict); a re-adoption of the same campaign id arriving from a
        second region only unions its vehicle attribution into the known
        spread and counts ``adoptions_deduped`` -- it never re-fires,
        re-appends, or double-pages an incident tracker.
        """
        sig = detection.signature
        if sig in self._flagged:
            self.adoptions_deduped += 1
            self._campaign_vehicles[sig].update(detection.vehicles)
            return None
        self.adopted += 1
        self._fire(detection, set(detection.vehicles))
        return detection

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Canonical JSON-safe dump; ``cursors`` index into the engines'
        ``detections`` lists, so a merger snapshot is only consistent
        with engine snapshots taken at the same pump boundary (the
        center snapshots all of them together)."""
        return {
            "config": {"window_s": self.window_s, "k": self.k},
            "flagged": [self._flagged[s].as_dict()
                        for s in sorted(self._flagged)],
            "campaign_vehicles": sorted(
                [sig, sorted(vehicles)]
                for sig, vehicles in self._campaign_vehicles.items()),
            "cursors": list(self._cursors),
            "detections": [d.as_dict() for d in self.detections],
            "merges": self.merges,
            "adopted": self.adopted,
            "adoptions_deduped": self.adoptions_deduped,
        }

    @classmethod
    def from_snapshot(cls, state: Dict[str, object]) -> "GlobalCampaignMerger":
        cfg = state["config"]
        merger = cls(window_s=cfg["window_s"], k=cfg["k"])
        for dobj in state["flagged"]:
            detection = CampaignDetection.from_dict(dobj)
            merger._flagged[detection.signature] = detection
        merger._campaign_vehicles = {
            sig: set(vehicles)
            for sig, vehicles in state["campaign_vehicles"]}
        merger._cursors = list(state["cursors"])
        merger.detections = [CampaignDetection.from_dict(d)
                             for d in state["detections"]]
        merger.merges = state["merges"]
        # Pre-federation snapshots lack the adoption counters.
        merger.adopted = state.get("adopted", 0)
        merger.adoptions_deduped = state.get("adoptions_deduped", 0)
        return merger

    # ------------------------------------------------------------------
    def is_flagged(self, signature: str) -> bool:
        return signature in self._flagged

    @property
    def flagged_signatures(self) -> Tuple[str, ...]:
        return tuple(self._flagged)

    def campaign_vehicles(self, signature: str) -> Set[str]:
        """Fleet-wide vehicles attributed to a flagged campaign."""
        return set(self._campaign_vehicles.get(signature, set()))

    def spread(self, signature: str) -> int:
        return len(self._campaign_vehicles.get(signature, ()))

    def metrics(self) -> Dict[str, float]:
        return {
            "campaigns_flagged": float(len(self._flagged)),
            "campaign_merges": float(self.merges),
            "campaigns_adopted": float(self.adopted),
            "adoptions_deduped": float(self.adoptions_deduped),
        }
