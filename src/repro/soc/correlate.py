"""Sliding-window cross-vehicle correlation.

The paper's §4.2 class-break argument: because a vehicle class shares
software, keys, and configurations, one working exploit recurs across
the fleet with the *same signature*.  Single-vehicle detection cannot
see that; a backend watching all vehicles can.  The engine here flags a
**campaign** when at least ``k`` *distinct* vehicles report the same
signature within a ``window``-second span.

Stream hygiene, in order of application:

1. **duplicate ids** -- at-least-once transports redeliver; an
   ``event_id`` is only ever counted once;
2. **lateness bound** -- events older than ``watermark - max_lateness``
   are dropped (out-of-order arrival *within* the bound is fine and
   still correlates);
3. **per-vehicle dedup** -- one noisy vehicle repeating a signature
   inside ``dedup_window`` seconds collapses to a single observation, so
   a single chatty ECU can never fake a fleet campaign.

Window semantics are **closed**: two events exactly ``window`` seconds
apart co-occur; ``window + ε`` apart do not.  (Pinned by the property
tests in ``tests/test_soc.py``.)

Fleet-scale fast path (the 10^7-vehicle E17 cell):

- per-signature state is **incremental** -- a min-heap of in-window
  entries, a running distinct-vehicle count, and a monotonically
  tracked newest timestamp -- so one observe costs O(log w) in the
  window size instead of the O(w) set-rebuild + max()-rescan the
  :class:`ReferenceCorrelationEngine` (the original implementation,
  kept as the executable spec) pays per event;
- :meth:`CorrelationEngine.observe_batch` consumes a whole dispatched
  batch with hot state in locals, differential-tested equivalent to
  per-event :meth:`~CorrelationEngine.observe`;
- dedup/duplicate bookkeeping is **bounded**: ids and per-vehicle
  timestamps older than the watermark minus the retention horizon are
  evicted, so memory is O(events in horizon), not O(events ever);
- :class:`GlobalCampaignMerger` stitches shard-local engines into
  fleet-wide campaigns, which makes region-keyed sharding (one
  signature spread over many shards) detect exactly what a single
  global engine would.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from collections import deque

from repro.core.safety import Asil
from repro.soc.events import SecurityEvent


@dataclass(frozen=True)
class CampaignDetection:
    """The correlator's verdict: one signature active fleet-wide."""

    signature: str
    detect_time: float          # time of the event that tripped the rule
    first_time: float           # earliest in-window observation
    vehicles: Tuple[str, ...]   # distinct vehicles at detection, sorted
    window_s: float
    k: int

    @property
    def spread(self) -> int:
        return len(self.vehicles)

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe form (snapshot/restore round-trips it exactly)."""
        return {
            "signature": self.signature,
            "detect_time": self.detect_time,
            "first_time": self.first_time,
            "vehicles": list(self.vehicles),
            "window_s": self.window_s,
            "k": self.k,
        }

    @classmethod
    def from_dict(cls, obj: Dict[str, object]) -> "CampaignDetection":
        return cls(
            signature=obj["signature"],
            detect_time=obj["detect_time"],
            first_time=obj["first_time"],
            vehicles=tuple(obj["vehicles"]),
            window_s=obj["window_s"],
            k=obj["k"],
        )


#: float("-inf") is not valid strict JSON; snapshots encode it as None.
def _enc_time(t: float) -> Optional[float]:
    return None if t == float("-inf") else t


def _dec_time(t: Optional[float]) -> float:
    return float("-inf") if t is None else t


class _SignatureWindow:
    """Incremental per-signature window state.

    ``heap`` holds the live (time, vehicle) entries as a min-heap, so
    expiry is pop-from-the-top and ``first_time`` is ``heap[0]``;
    ``counts`` tracks live entries per vehicle, so the distinct-vehicle
    cardinality is ``len(counts)`` with no per-event set rebuild;
    ``newest`` is tracked monotonically -- pruning can only remove
    entries strictly older than ``newest - window``, never the maximum
    itself, so a running max is exact.
    """

    __slots__ = ("heap", "counts", "newest")

    def __init__(self) -> None:
        self.heap: List[Tuple[float, str]] = []
        self.counts: Dict[str, int] = {}
        self.newest = float("-inf")


class CorrelationEngine:
    """Deduplicate per-vehicle noise; detect cross-fleet campaigns.

    Equivalent to :class:`ReferenceCorrelationEngine` (the property
    tests machine-check it) but O(log w) per event and bounded-memory:

    - ``_seen_ids`` and ``_last_by_key`` map to the *time* of the entry
      and are swept once the watermark has advanced past the retention
      horizon ``max_lateness_s + dedup_window_s``.  Inside that horizon
      dedup/duplicate semantics are bit-identical to the reference;
      beyond it a redelivered id can only belong to an event that the
      lateness bound drops anyway (it is then attributed to
      ``late_dropped`` instead of ``duplicate_ids`` -- same drop, same
      hygiene, bounded ledger).
    - signature windows whose newest entry can never co-occur with any
      future admissible event (``newest < watermark - max_lateness -
      window``) are dropped whole.
    """

    def __init__(
        self,
        window_s: float = 8.0,
        k: int = 3,
        dedup_window_s: float = 4.0,
        max_lateness_s: float = 2.0,
        min_severity: Asil = Asil.B,
    ) -> None:
        if k < 2:
            raise ValueError("a campaign needs k >= 2 vehicles")
        if window_s <= 0 or dedup_window_s < 0 or max_lateness_s < 0:
            raise ValueError("windows must be positive")
        self.window_s = window_s
        self.k = k
        self.dedup_window_s = dedup_window_s
        self.max_lateness_s = max_lateness_s
        self.min_severity = min_severity

        # Retention horizon for the dedup/duplicate ledgers.  The sum
        # (not the max) is the tight bound: an admissible event has
        # time >= watermark - max_lateness, so a per-vehicle timestamp
        # older than watermark - (max_lateness + dedup_window) can never
        # again satisfy |t_new - t_old| <= dedup_window.
        self._retention_s = max_lateness_s + dedup_window_s

        self._seen_ids: Dict[str, float] = {}
        self._last_by_key: Dict[Tuple[str, str], float] = {}
        self._by_signature: Dict[str, _SignatureWindow] = {}
        self._flagged: Dict[str, CampaignDetection] = {}
        self._campaign_vehicles: Dict[str, Set[str]] = {}
        self._dirty: Set[str] = set()          # signatures changed since pop_dirty
        self._last_sweep_wm = float("-inf")

        self.watermark = float("-inf")
        self.observed = 0
        self.duplicate_ids = 0
        self.late_dropped = 0
        self.low_severity_ignored = 0
        self.deduped = 0
        self.ids_evicted = 0
        self.keys_evicted = 0
        self.windows_evicted = 0
        self.detections: List[CampaignDetection] = []

    # ------------------------------------------------------------------
    def observe(self, event: SecurityEvent) -> Optional[CampaignDetection]:
        """Feed one event; returns a detection the first time a signature
        crosses the k-vehicles-in-window threshold."""
        self.observed += 1

        t = event.time
        seen = self._seen_ids
        if event.event_id in seen:
            self.duplicate_ids += 1
            return None
        seen[event.event_id] = t

        if t < self.watermark - self.max_lateness_s:
            self.late_dropped += 1
            return None
        if t > self.watermark:
            self.watermark = t
            if t - self._last_sweep_wm >= self._retention_s:
                self._sweep()

        # Only actionable telemetry (>= min_severity) can seed a campaign
        # window -- QM/A observability noise is counted and discarded, so
        # chatter can never manufacture a fleet incident.
        if event.severity < self.min_severity:
            self.low_severity_ignored += 1
            return None

        key = (event.vehicle_id, event.signature)
        last = self._last_by_key.get(key)
        if last is not None and abs(t - last) <= self.dedup_window_s:
            self.deduped += 1
            if t > last:
                self._last_by_key[key] = t
            return None
        self._last_by_key[key] = t

        sig = event.signature
        if sig in self._flagged:
            # Campaign already open: track spread, don't re-fire.
            self._campaign_vehicles[sig].add(event.vehicle_id)
            self._dirty.add(sig)
            return None
        return self._window_insert(sig, t, event.vehicle_id)

    def observe_batch(
        self, events: Sequence[SecurityEvent]
    ) -> List[Optional[CampaignDetection]]:
        """Feed a dispatched batch; returns per-event verdicts.

        Semantically identical to ``[self.observe(e) for e in events]``
        (the Hypothesis differential pins detections, every counter, and
        the watermark), but with the hot state in locals and one Python
        call per *batch* instead of per event.
        """
        out: List[Optional[CampaignDetection]] = []
        append = out.append
        seen = self._seen_ids
        last_by_key = self._last_by_key
        flagged = self._flagged
        campaign_vehicles = self._campaign_vehicles
        dirty = self._dirty
        max_lateness = self.max_lateness_s
        dedup_window = self.dedup_window_s
        retention = self._retention_s
        min_severity = self.min_severity
        window_insert = self._window_insert

        observed = duplicates = late = low = deduped = 0
        for event in events:
            observed += 1
            t = event.time
            eid = event.event_id
            if eid in seen:
                duplicates += 1
                append(None)
                continue
            seen[eid] = t
            if t < self.watermark - max_lateness:
                late += 1
                append(None)
                continue
            if t > self.watermark:
                self.watermark = t
                if t - self._last_sweep_wm >= retention:
                    self._sweep()
            if event.severity < min_severity:
                low += 1
                append(None)
                continue
            key = (event.vehicle_id, event.signature)
            last = last_by_key.get(key)
            if last is not None and abs(t - last) <= dedup_window:
                deduped += 1
                if t > last:
                    last_by_key[key] = t
                append(None)
                continue
            last_by_key[key] = t
            sig = event.signature
            if sig in flagged:
                campaign_vehicles[sig].add(event.vehicle_id)
                dirty.add(sig)
                append(None)
                continue
            append(window_insert(sig, t, event.vehicle_id))

        self.observed += observed
        self.duplicate_ids += duplicates
        self.late_dropped += late
        self.low_severity_ignored += low
        self.deduped += deduped
        return out

    # ------------------------------------------------------------------
    def _window_insert(
        self, sig: str, t: float, vehicle: str
    ) -> Optional[CampaignDetection]:
        """Add one admissible observation to a signature window; prune
        incrementally; fire when k distinct vehicles co-occur."""
        w = self._by_signature.get(sig)
        if w is None:
            w = self._by_signature[sig] = _SignatureWindow()
        heap = w.heap
        counts = w.counts
        heappush(heap, (t, vehicle))
        counts[vehicle] = counts.get(vehicle, 0) + 1
        if t > w.newest:
            w.newest = t
        # Closed window: entries exactly window_s old still co-occur;
        # strictly older ones expire.  The heap's top is always the
        # oldest live entry, so expiry never rescans the window.
        cutoff = w.newest - self.window_s
        while heap[0][0] < cutoff:
            _, gone = heappop(heap)
            c = counts[gone] - 1
            if c:
                counts[gone] = c
            else:
                del counts[gone]
        self._dirty.add(sig)
        if len(counts) < self.k:
            return None

        detection = CampaignDetection(
            signature=sig,
            detect_time=t,
            first_time=heap[0][0],
            vehicles=tuple(sorted(counts)),
            window_s=self.window_s,
            k=self.k,
        )
        self._flagged[sig] = detection
        self._campaign_vehicles[sig] = set(counts)
        del self._by_signature[sig]
        self.detections.append(detection)
        return detection

    def _sweep(self) -> None:
        """Evict dedup/duplicate ledger entries past the retention
        horizon and signature windows that can never fire again.

        Amortized O(1) per observe: a sweep runs only once per
        ``_retention_s`` of watermark advance, and an entry is examined
        by at most two sweeps before eviction.
        """
        wm = self.watermark
        self._last_sweep_wm = wm
        horizon = wm - self._retention_s
        seen = self._seen_ids
        stale_ids = [eid for eid, t in seen.items() if t < horizon]
        for eid in stale_ids:
            del seen[eid]
        self.ids_evicted += len(stale_ids)
        last = self._last_by_key
        stale_keys = [key for key, t in last.items() if t < horizon]
        for key in stale_keys:
            del last[key]
        self.keys_evicted += len(stale_keys)
        # A window whose newest entry is older than this can never share
        # a closed window with any future admissible (in-lateness) event,
        # so dropping it whole is invisible to detection semantics.
        window_horizon = wm - self.max_lateness_s - self.window_s
        windows = self._by_signature
        stale_sigs = [s for s, w in windows.items() if w.newest < window_horizon]
        for s in stale_sigs:
            del windows[s]
        self.windows_evicted += len(stale_sigs)

    # ------------------------------------------------------------------
    # Snapshot / restore (the durable-store recovery contract)
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Canonical JSON-safe dump of *all* correlator state.

        Canonical means deterministically ordered (sets and dicts are
        serialized sorted, heaps in sorted order -- equal-element heap
        layout is unobservable, so a sorted list restores identical
        behavior), which makes two semantically equal engines produce
        byte-identical snapshots: the property the crash-recovery
        differential tests compare on.  ``detections`` keeps its append
        order -- :class:`GlobalCampaignMerger` cursors index into it.
        """
        return {
            "config": {
                "window_s": self.window_s,
                "k": self.k,
                "dedup_window_s": self.dedup_window_s,
                "max_lateness_s": self.max_lateness_s,
                "min_severity": int(self.min_severity),
            },
            "watermark": _enc_time(self.watermark),
            "last_sweep_wm": _enc_time(self._last_sweep_wm),
            "seen_ids": sorted([eid, t] for eid, t in self._seen_ids.items()),
            "last_by_key": sorted(
                [v, s, t] for (v, s), t in self._last_by_key.items()),
            "windows": sorted(
                [sig, {"heap": sorted([t, v] for t, v in w.heap),
                       "counts": sorted([v, c] for v, c in w.counts.items()),
                       "newest": _enc_time(w.newest)}]
                for sig, w in self._by_signature.items()),
            "flagged": [self._flagged[s].as_dict()
                        for s in sorted(self._flagged)],
            "campaign_vehicles": sorted(
                [sig, sorted(vehicles)]
                for sig, vehicles in self._campaign_vehicles.items()),
            "dirty": sorted(self._dirty),
            "detections": [d.as_dict() for d in self.detections],
            "counters": {
                "observed": self.observed,
                "duplicate_ids": self.duplicate_ids,
                "late_dropped": self.late_dropped,
                "low_severity_ignored": self.low_severity_ignored,
                "deduped": self.deduped,
                "ids_evicted": self.ids_evicted,
                "keys_evicted": self.keys_evicted,
                "windows_evicted": self.windows_evicted,
            },
        }

    @classmethod
    def from_snapshot(cls, state: Dict[str, object]) -> "CorrelationEngine":
        """Rebuild an engine whose future behavior is indistinguishable
        from the snapshotted one (pinned by the recovery differentials)."""
        cfg = state["config"]
        engine = cls(
            window_s=cfg["window_s"], k=cfg["k"],
            dedup_window_s=cfg["dedup_window_s"],
            max_lateness_s=cfg["max_lateness_s"],
            min_severity=Asil(cfg["min_severity"]),
        )
        engine.watermark = _dec_time(state["watermark"])
        engine._last_sweep_wm = _dec_time(state["last_sweep_wm"])
        engine._seen_ids = {eid: t for eid, t in state["seen_ids"]}
        engine._last_by_key = {(v, s): t for v, s, t in state["last_by_key"]}
        for sig, wobj in state["windows"]:
            w = _SignatureWindow()
            # A sorted list satisfies the heap invariant as-is.
            w.heap = [(t, v) for t, v in wobj["heap"]]
            w.counts = {v: c for v, c in wobj["counts"]}
            w.newest = _dec_time(wobj["newest"])
            engine._by_signature[sig] = w
        for dobj in state["flagged"]:
            detection = CampaignDetection.from_dict(dobj)
            engine._flagged[detection.signature] = detection
        engine._campaign_vehicles = {
            sig: set(vehicles)
            for sig, vehicles in state["campaign_vehicles"]}
        engine._dirty = set(state["dirty"])
        engine.detections = [CampaignDetection.from_dict(d)
                             for d in state["detections"]]
        counters = state["counters"]
        engine.observed = counters["observed"]
        engine.duplicate_ids = counters["duplicate_ids"]
        engine.late_dropped = counters["late_dropped"]
        engine.low_severity_ignored = counters["low_severity_ignored"]
        engine.deduped = counters["deduped"]
        engine.ids_evicted = counters["ids_evicted"]
        engine.keys_evicted = counters["keys_evicted"]
        engine.windows_evicted = counters["windows_evicted"]
        return engine

    # ------------------------------------------------------------------
    # Shard-local merge support
    # ------------------------------------------------------------------
    def is_flagged(self, signature: str) -> bool:
        return signature in self._flagged

    def pop_dirty(self) -> Set[str]:
        """Signatures whose window/campaign state changed since the last
        call -- the merger's incremental work list."""
        dirty = self._dirty
        self._dirty = set()
        return dirty

    def pending_entries(self, signature: str) -> List[Tuple[float, str]]:
        """Live (time, vehicle) entries of an un-flagged window (pruned
        against this engine's own newest; a merger re-prunes globally)."""
        w = self._by_signature.get(signature)
        return list(w.heap) if w is not None else []

    def adopt_campaign(self, detection: CampaignDetection) -> None:
        """Accept a fleet-wide verdict from a merger: flag the signature
        locally so subsequent events attribute spread exactly, and fold
        any pending window into the campaign's vehicle set."""
        sig = detection.signature
        if sig in self._flagged:
            return
        self._flagged[sig] = detection
        vehicles = self._campaign_vehicles.setdefault(sig, set())
        w = self._by_signature.pop(sig, None)
        if w is not None:
            vehicles.update(w.counts)
        self._dirty.add(sig)

    # ------------------------------------------------------------------
    @property
    def flagged_signatures(self) -> Tuple[str, ...]:
        return tuple(self._flagged)

    def campaign_vehicles(self, signature: str) -> Set[str]:
        """All vehicles attributed to a flagged campaign so far."""
        return set(self._campaign_vehicles.get(signature, set()))

    def pending_vehicles(self, signature: str) -> Set[str]:
        """Distinct vehicles currently in the (un-flagged) window."""
        w = self._by_signature.get(signature)
        return set(w.counts) if w is not None else set()

    def metrics(self) -> Dict[str, float]:
        return {
            "observed": float(self.observed),
            "duplicate_ids": float(self.duplicate_ids),
            "late_dropped": float(self.late_dropped),
            "low_severity_ignored": float(self.low_severity_ignored),
            "deduped": float(self.deduped),
            "campaigns_flagged": float(len(self._flagged)),
        }


class ReferenceCorrelationEngine:
    """The original per-event correlator, kept verbatim as the
    executable specification.

    Every observe rebuilds the distinct-vehicle set and rescans the
    window maximum -- O(w) per event -- and its dedup/duplicate ledgers
    grow without bound.  It exists so that (a) the Hypothesis
    differential tests can prove :class:`CorrelationEngine` equivalent
    inside the retention horizon, and (b) the E17 bench can report the
    batched fast path's speedup against the *same-run* per-event
    baseline (``BENCH_E17.json``).
    """

    def __init__(
        self,
        window_s: float = 8.0,
        k: int = 3,
        dedup_window_s: float = 4.0,
        max_lateness_s: float = 2.0,
        min_severity: Asil = Asil.B,
    ) -> None:
        if k < 2:
            raise ValueError("a campaign needs k >= 2 vehicles")
        if window_s <= 0 or dedup_window_s < 0 or max_lateness_s < 0:
            raise ValueError("windows must be positive")
        self.window_s = window_s
        self.k = k
        self.dedup_window_s = dedup_window_s
        self.max_lateness_s = max_lateness_s
        self.min_severity = min_severity

        self._seen_ids: Set[str] = set()
        self._last_by_key: Dict[Tuple[str, str], float] = {}
        self._by_signature: Dict[str, Deque[Tuple[float, str]]] = {}
        self._flagged: Dict[str, CampaignDetection] = {}
        self._campaign_vehicles: Dict[str, Set[str]] = {}

        self.watermark = float("-inf")
        self.observed = 0
        self.duplicate_ids = 0
        self.late_dropped = 0
        self.low_severity_ignored = 0
        self.deduped = 0
        self.detections: List[CampaignDetection] = []

    # ------------------------------------------------------------------
    def observe(self, event: SecurityEvent) -> Optional[CampaignDetection]:
        self.observed += 1

        if event.event_id in self._seen_ids:
            self.duplicate_ids += 1
            return None
        self._seen_ids.add(event.event_id)

        if event.time < self.watermark - self.max_lateness_s:
            self.late_dropped += 1
            return None
        if event.time > self.watermark:
            self.watermark = event.time

        if event.severity < self.min_severity:
            self.low_severity_ignored += 1
            return None

        key = (event.vehicle_id, event.signature)
        last = self._last_by_key.get(key)
        if last is not None and abs(event.time - last) <= self.dedup_window_s:
            self.deduped += 1
            self._last_by_key[key] = max(last, event.time)
            return None
        self._last_by_key[key] = event.time

        if event.signature in self._flagged:
            self._campaign_vehicles[event.signature].add(event.vehicle_id)
            return None

        entries = self._by_signature.setdefault(event.signature, deque())
        entries.append((event.time, event.vehicle_id))
        entries = self._prune(event.signature)

        vehicles = {v for _, v in entries}
        if len(vehicles) < self.k:
            return None

        detection = CampaignDetection(
            signature=event.signature,
            detect_time=event.time,
            first_time=min(t for t, _ in entries),
            vehicles=tuple(sorted(vehicles)),
            window_s=self.window_s,
            k=self.k,
        )
        self._flagged[event.signature] = detection
        self._campaign_vehicles[event.signature] = set(vehicles)
        self._by_signature.pop(event.signature, None)
        self.detections.append(detection)
        return detection

    def _prune(self, signature: str) -> Deque[Tuple[float, str]]:
        entries = self._by_signature[signature]
        if not entries:
            return entries
        newest = max(t for t, _ in entries)
        cutoff = newest - self.window_s
        if any(t < cutoff for t, _ in entries):
            entries = deque((t, v) for t, v in entries if t >= cutoff)
            self._by_signature[signature] = entries
        return entries

    # ------------------------------------------------------------------
    @property
    def flagged_signatures(self) -> Tuple[str, ...]:
        return tuple(self._flagged)

    def campaign_vehicles(self, signature: str) -> Set[str]:
        return set(self._campaign_vehicles.get(signature, set()))

    def pending_vehicles(self, signature: str) -> Set[str]:
        return {v for _, v in self._by_signature.get(signature, ())}

    def metrics(self) -> Dict[str, float]:
        return {
            "observed": float(self.observed),
            "duplicate_ids": float(self.duplicate_ids),
            "late_dropped": float(self.late_dropped),
            "low_severity_ignored": float(self.low_severity_ignored),
            "deduped": float(self.deduped),
            "campaigns_flagged": float(len(self._flagged)),
        }


class GlobalCampaignMerger:
    """Stitches shard-local :class:`CorrelationEngine` state into
    fleet-wide campaigns.

    With signature-keyed sharding a campaign lives wholly on one shard,
    so a local detection *is* the fleet verdict and the merger merely
    forwards it.  With region-keyed sharding one signature's vehicles
    spread across shards and no single engine may ever reach ``k``; the
    merger therefore also combines the engines' *pending* window entries
    -- re-pruned against the global newest, same closed-window semantics
    -- and fires when the cross-shard distinct-vehicle union reaches
    ``k``.

    The merge is incremental: engines mark signatures dirty as their
    state changes (:meth:`CorrelationEngine.pop_dirty`) and expose new
    local detections through a per-engine cursor, so one merge pass
    costs O(changed signatures), not O(all signatures ever seen).

    :meth:`merge` returns ``(new_detections, new_vehicles)`` where
    ``new_vehicles`` maps already-flagged signatures to vehicles newly
    attributed since the previous merge -- the spread-accounting delta an
    incident tracker consumes without rescanning whole campaigns.
    """

    def __init__(self, window_s: float = 8.0, k: int = 3) -> None:
        if k < 2:
            raise ValueError("a campaign needs k >= 2 vehicles")
        if window_s <= 0:
            raise ValueError("window must be positive")
        self.window_s = window_s
        self.k = k
        self._flagged: Dict[str, CampaignDetection] = {}
        self._campaign_vehicles: Dict[str, Set[str]] = {}
        self._cursors: List[int] = []
        self.detections: List[CampaignDetection] = []
        self.merges = 0
        self.adopted = 0
        self.adoptions_deduped = 0

    # ------------------------------------------------------------------
    def merge(
        self, engines: Sequence[CorrelationEngine]
    ) -> Tuple[List[CampaignDetection], Dict[str, Set[str]]]:
        """One incremental stitch over the shard-local engines."""
        self.merges += 1
        while len(self._cursors) < len(engines):
            self._cursors.append(0)

        new_detections: List[CampaignDetection] = []
        new_vehicles: Dict[str, Set[str]] = {}
        dirty: Set[str] = set()
        local_detections: List[CampaignDetection] = []
        for index, engine in enumerate(engines):
            fresh = engine.detections[self._cursors[index]:]
            if fresh:
                local_detections.extend(fresh)
                self._cursors[index] = len(engine.detections)
            dirty |= engine.pop_dirty()

        # 1. Local detections: already-proven campaigns.  Extend the
        #    verdict with other shards' in-window pending vehicles (only
        #    relevant under region sharding; empty under signature
        #    sharding, where the merged detection equals the local one).
        for local in local_detections:
            sig = local.signature
            dirty.discard(sig)
            if sig in self._flagged:
                self._attribute(sig, set(local.vehicles), new_vehicles)
                continue
            entries = self._pending(engines, sig)
            cutoff = local.detect_time - self.window_s
            in_window = [(t, v) for t, v in entries if t >= cutoff]
            vehicles = set(local.vehicles) | {v for _, v in in_window}
            merged = CampaignDetection(
                signature=sig,
                detect_time=local.detect_time,
                first_time=min([local.first_time] + [t for t, _ in in_window]),
                vehicles=tuple(sorted(vehicles)),
                window_s=self.window_s,
                k=self.k,
            )
            self._fire(merged, vehicles | {v for _, v in entries})
            new_detections.append(merged)

        # 2. Dirty signatures without a local verdict: the cross-shard
        #    sub-threshold stitch region sharding needs.
        for sig in sorted(dirty):
            if sig in self._flagged:
                combined: Set[str] = set()
                for engine in engines:
                    combined |= engine.campaign_vehicles(sig)
                    combined |= engine.pending_vehicles(sig)
                self._attribute(sig, combined, new_vehicles)
                continue
            entries = self._pending(engines, sig)
            if not entries:
                continue
            newest = max(t for t, _ in entries)
            cutoff = newest - self.window_s
            in_window = [(t, v) for t, v in entries if t >= cutoff]
            vehicles = {v for _, v in in_window}
            if len(vehicles) < self.k:
                continue
            detection = CampaignDetection(
                signature=sig,
                detect_time=newest,
                first_time=min(t for t, _ in in_window),
                vehicles=tuple(sorted(vehicles)),
                window_s=self.window_s,
                k=self.k,
            )
            self._fire(detection, {v for _, v in entries})
            new_detections.append(detection)
        return new_detections, new_vehicles

    # ------------------------------------------------------------------
    @staticmethod
    def _pending(
        engines: Sequence[CorrelationEngine], signature: str
    ) -> List[Tuple[float, str]]:
        entries: List[Tuple[float, str]] = []
        for engine in engines:
            entries.extend(engine.pending_entries(signature))
        return entries

    def _fire(self, detection: CampaignDetection, vehicles: Set[str]) -> None:
        self._flagged[detection.signature] = detection
        self._campaign_vehicles[detection.signature] = set(vehicles)
        self.detections.append(detection)

    def _attribute(
        self, signature: str, vehicles: Set[str],
        new_vehicles: Dict[str, Set[str]],
    ) -> None:
        known = self._campaign_vehicles[signature]
        delta = vehicles - known
        if delta:
            known |= delta
            new_vehicles.setdefault(signature, set()).update(delta)

    def adopt_campaign(
        self, detection: CampaignDetection
    ) -> Optional[CampaignDetection]:
        """Accept an externally-proven verdict (a federated peer region
        announcing a campaign it already fired).

        Idempotent across regions: the *first* adoption of a signature
        flags it and appends to ``detections`` (returning the adopted
        verdict); a re-adoption of the same campaign id arriving from a
        second region only unions its vehicle attribution into the known
        spread and counts ``adoptions_deduped`` -- it never re-fires,
        re-appends, or double-pages an incident tracker.
        """
        sig = detection.signature
        if sig in self._flagged:
            self.adoptions_deduped += 1
            self._campaign_vehicles[sig].update(detection.vehicles)
            return None
        self.adopted += 1
        self._fire(detection, set(detection.vehicles))
        return detection

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Canonical JSON-safe dump; ``cursors`` index into the engines'
        ``detections`` lists, so a merger snapshot is only consistent
        with engine snapshots taken at the same pump boundary (the
        center snapshots all of them together)."""
        return {
            "config": {"window_s": self.window_s, "k": self.k},
            "flagged": [self._flagged[s].as_dict()
                        for s in sorted(self._flagged)],
            "campaign_vehicles": sorted(
                [sig, sorted(vehicles)]
                for sig, vehicles in self._campaign_vehicles.items()),
            "cursors": list(self._cursors),
            "detections": [d.as_dict() for d in self.detections],
            "merges": self.merges,
            "adopted": self.adopted,
            "adoptions_deduped": self.adoptions_deduped,
        }

    @classmethod
    def from_snapshot(cls, state: Dict[str, object]) -> "GlobalCampaignMerger":
        cfg = state["config"]
        merger = cls(window_s=cfg["window_s"], k=cfg["k"])
        for dobj in state["flagged"]:
            detection = CampaignDetection.from_dict(dobj)
            merger._flagged[detection.signature] = detection
        merger._campaign_vehicles = {
            sig: set(vehicles)
            for sig, vehicles in state["campaign_vehicles"]}
        merger._cursors = list(state["cursors"])
        merger.detections = [CampaignDetection.from_dict(d)
                             for d in state["detections"]]
        merger.merges = state["merges"]
        # Pre-federation snapshots lack the adoption counters.
        merger.adopted = state.get("adopted", 0)
        merger.adoptions_deduped = state.get("adoptions_deduped", 0)
        return merger

    # ------------------------------------------------------------------
    def is_flagged(self, signature: str) -> bool:
        return signature in self._flagged

    @property
    def flagged_signatures(self) -> Tuple[str, ...]:
        return tuple(self._flagged)

    def campaign_vehicles(self, signature: str) -> Set[str]:
        """Fleet-wide vehicles attributed to a flagged campaign."""
        return set(self._campaign_vehicles.get(signature, set()))

    def spread(self, signature: str) -> int:
        return len(self._campaign_vehicles.get(signature, ()))

    def metrics(self) -> Dict[str, float]:
        return {
            "campaigns_flagged": float(len(self._flagged)),
            "campaign_merges": float(self.merges),
            "campaigns_adopted": float(self.adopted),
            "adoptions_deduped": float(self.adoptions_deduped),
        }
