"""Federated multi-region VSOC: durable log-shipping + cross-region merge.

The paper's §7 closes on the need for a *centralized, fleet-wide
security policy* loop; a real OEM backend deploys that loop per
continent, not as one process.  This module federates M regional SOCs
(each its own sharded ingest + correlators + durable
:class:`~repro.soc.store.EventLog`) into one fleet-wide campaign view by
shipping the regions' **log-segment streams** -- the same self-framing
CRC records PR 4 made the recovery substrate -- instead of in-process
calls:

- :class:`SegmentShipper` tails a region's log with the checkpoint-
  seeking :meth:`~repro.soc.store.EventLog.tail` cursor and frames new
  records into :class:`Shipment` wire blobs.  The durable log *is* the
  retransmit buffer: a send refused by an outage window simply leaves
  the cursor in place and retries next pump, and a shipper restarted
  from seq 0 after a region kill re-ships history the receiver dedups.
- :class:`ShippingChannel` models the WAN: configurable base lag,
  jitter (which reorders), duplication, and outage windows, all driven
  by a seeded RNG so every delivery schedule is reproducible.
- :class:`SegmentReceiver` (one per region, inside the hub) verifies
  each shipment's CRC framing, drops corrupt blobs whole, dedups
  records by per-region sequence number, and buffers out-of-order
  arrivals until they are contiguous.
- :class:`FederationHub` replays received records through replica
  engines and one :class:`~repro.soc.correlate.GlobalCampaignMerger`,
  gated by **per-region low-watermarks**: a record is applied only once
  every other region's frontier proves no earlier record can still
  arrive.  The applied sequence is therefore exactly the global
  ``(dispatch_t, region, seq)`` sort of all regions' streams --
  *independent of delivery interleaving* -- which is what makes the
  hub's final state byte-identical across any bounded-lag reordering
  (the Hypothesis property in ``tests/test_soc_federation.py``) and
  identical to an in-order union replay at zero lag.

The price of that determinism is strict consistency: a partitioned
region freezes its frontier, which stalls the *global* merge until the
partition heals (the hub cannot prove order without it).  E18's
partition/heal cell measures exactly that trade.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.soc.center import SecurityOperationsCenter
from repro.soc.columnar import StringInterner, build_batch
from repro.soc.correlate import (
    CampaignDetection,
    CorrelationEngine,
    GlobalCampaignMerger,
)
from repro.soc.incident import IncidentTracker
from repro.soc.store import (
    _HEADER,
    _record_from_payload,
    _dumps,
    CorruptRecord,
    EventLog,
    LogRecord,
    frame_payload,
    record_payload,
)

_NEG_INF = float("-inf")


def _enc_time(t: float) -> Optional[float]:
    return None if t == _NEG_INF else t


# ----------------------------------------------------------------------
# Wire format: shipments of CRC-framed log records
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Shipment:
    """One wire blob: a contiguous run of one region's log records.

    ``watermark`` is the ``dispatch_t`` of the last record -- proven by
    the log content itself, never by the shipper's clock, so a replayed
    shipment carries the same bytes no matter when it is (re)sent.
    """

    region: str
    first_seq: int
    last_seq: int
    watermark: float
    records: Tuple[LogRecord, ...]


def encode_shipment(shipment: Shipment) -> bytes:
    """Serialize: one framed header + one framed payload per record,
    each in the log's own ``u32 len | u32 CRC32 | payload`` envelope, so
    the wire format self-verifies exactly like a segment on disk."""
    if not shipment.records:
        raise ValueError("a shipment carries at least one record")
    head = _dumps(["h", shipment.region, shipment.first_seq,
                   shipment.last_seq, shipment.watermark])
    parts = [frame_payload(head)]
    for record in shipment.records:
        parts.append(frame_payload(record_payload(record)))
    return b"".join(parts)


def decode_shipment(data: bytes) -> Shipment:
    """Parse + verify a shipment; raises :class:`CorruptRecord` on any
    framing/CRC/consistency damage (a bad blob is rejected whole)."""
    payloads: List[bytes] = []
    offset = 0
    while offset < len(data):
        if len(data) - offset < _HEADER.size:
            raise CorruptRecord("shipment: short frame header")
        length, crc = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        payload = data[start:start + length]
        if len(payload) < length or zlib.crc32(payload) != crc:
            raise CorruptRecord("shipment: frame failed length/CRC check")
        payloads.append(payload)
        offset = start + length
    if not payloads:
        raise CorruptRecord("shipment: empty blob")
    head = json.loads(payloads[0].decode("utf-8"))
    if head[0] != "h":
        raise CorruptRecord(f"shipment: bad header tag {head[0]!r}")
    _, region, first_seq, last_seq, watermark = head
    first_seq, last_seq = int(first_seq), int(last_seq)
    if len(payloads) - 1 != last_seq - first_seq + 1:
        raise CorruptRecord("shipment: record count does not match header")
    records = tuple(_record_from_payload(first_seq + i, p)
                    for i, p in enumerate(payloads[1:]))
    if records[-1].dispatch_t != float(watermark):
        raise CorruptRecord("shipment: watermark does not match last record")
    return Shipment(region=region, first_seq=first_seq, last_seq=last_seq,
                    watermark=float(watermark), records=records)


# ----------------------------------------------------------------------
# Transport model
# ----------------------------------------------------------------------

class ShippingChannel:
    """A deterministic, seeded WAN model for one region -> hub link.

    ``lag_s`` is the base one-way delay; ``jitter_s`` adds a uniform
    random extra per blob (two blobs sent back-to-back can therefore
    arrive *reordered*); with probability ``duplicate_p`` a blob is
    delivered twice; during any ``outages`` window ``[t0, t1)`` the link
    refuses sends outright (:meth:`send` returns ``False`` -- the
    shipper keeps its cursor and the durable log retransmits later, so
    an outage loses nothing, it only delays).
    """

    def __init__(self, rng, lag_s: float = 0.0, jitter_s: float = 0.0,
                 duplicate_p: float = 0.0,
                 outages: Sequence[Tuple[float, float]] = ()) -> None:
        if lag_s < 0 or jitter_s < 0 or not (0.0 <= duplicate_p <= 1.0):
            raise ValueError("bad channel parameters")
        self._rng = rng
        self.lag_s = lag_s
        self.jitter_s = jitter_s
        self.duplicate_p = duplicate_p
        self.outages = tuple(outages)
        self._in_flight: List[Tuple[float, int, bytes]] = []
        self._tie = 0
        self.sent = 0
        self.refused = 0
        self.duplicated = 0

    def in_outage(self, now: float) -> bool:
        return any(t0 <= now < t1 for t0, t1 in self.outages)

    def send(self, now: float, data: bytes) -> bool:
        if self.in_outage(now):
            self.refused += 1
            return False
        self.sent += 1
        self._enqueue(now, data)
        if self.duplicate_p and self._rng.random() < self.duplicate_p:
            self.duplicated += 1
            self._enqueue(now, data)
        return True

    def _enqueue(self, now: float, data: bytes) -> None:
        deliver_at = now + self.lag_s
        if self.jitter_s:
            deliver_at += self._rng.uniform(0.0, self.jitter_s)
        self._tie += 1
        heappush(self._in_flight, (deliver_at, self._tie, data))

    def deliver(self, now: float) -> List[bytes]:
        """Pop every blob whose delivery time has arrived, in delivery
        order (``deliver(float('inf'))`` drains the link)."""
        out: List[bytes] = []
        while self._in_flight and self._in_flight[0][0] <= now:
            out.append(heappop(self._in_flight)[2])
        return out

    def drop_in_flight(self) -> int:
        """Lose everything currently on the wire (a region kill takes
        its half-open connections with it); returns the count dropped."""
        dropped = len(self._in_flight)
        self._in_flight = []
        return dropped

    @property
    def in_flight(self) -> int:
        return len(self._in_flight)


class SegmentShipper:
    """Tails one region's :class:`~repro.soc.store.EventLog` and ships
    new records over a :class:`ShippingChannel`.

    Restart semantics: the only durable state is the log itself.  A
    fresh shipper (cursor 0) re-tails from the beginning and re-ships
    everything -- at-least-once delivery, made exactly-once by the
    receiver's per-region seq dedup.
    """

    def __init__(self, region: str, log: EventLog,
                 channel: ShippingChannel, *,
                 max_batch_records: int = 256,
                 shipped_seq: int = 0) -> None:
        if max_batch_records < 1:
            raise ValueError("max_batch_records must be >= 1")
        self.region = region
        self.log = log
        self.channel = channel
        self.max_batch_records = max_batch_records
        self.shipped_seq = shipped_seq
        self.shipments_sent = 0
        self.records_shipped = 0
        self.send_refused = 0

    def pump(self, now: float) -> int:
        """Ship every record past the cursor; returns records shipped.
        On a refused send the cursor stays put -- the log retransmits."""
        if self.channel.in_outage(now):
            # Don't even tail: the link is down and the cursor is safe.
            self.send_refused += 1
            return 0
        records = list(self.log.tail(after_seq=self.shipped_seq))
        shipped = 0
        index = 0
        while index < len(records):
            chunk = records[index:index + self.max_batch_records]
            shipment = Shipment(
                region=self.region,
                first_seq=chunk[0].seq,
                last_seq=chunk[-1].seq,
                watermark=chunk[-1].dispatch_t,
                records=tuple(chunk),
            )
            if not self.channel.send(now, encode_shipment(shipment)):
                self.send_refused += 1
                break
            self.shipped_seq = chunk[-1].seq
            self.shipments_sent += 1
            self.records_shipped += len(chunk)
            shipped += len(chunk)
            index += len(chunk)
        return shipped


# ----------------------------------------------------------------------
# Hub side
# ----------------------------------------------------------------------

class SegmentReceiver:
    """Per-region arrival state inside the hub: CRC-checked decode,
    seq dedup (duplication + re-ship after restart), and an out-of-order
    buffer keyed by seq so only contiguous records ever apply."""

    def __init__(self, region: str) -> None:
        self.region = region
        self.applied_seq = 0
        self.buffer: Dict[int, LogRecord] = {}
        self.shipments_received = 0
        self.records_received = 0
        self.duplicates = 0
        self.corrupt_rejected = 0

    def receive(self, data: bytes) -> bool:
        """Ingest one wire blob; ``False`` if it was corrupt (counted
        and rejected whole -- never half-applied)."""
        try:
            shipment = decode_shipment(data)
        except CorruptRecord:
            self.corrupt_rejected += 1
            return False
        if shipment.region != self.region:
            self.corrupt_rejected += 1
            return False
        self.shipments_received += 1
        for record in shipment.records:
            self.records_received += 1
            if record.seq <= self.applied_seq or record.seq in self.buffer:
                self.duplicates += 1
            else:
                self.buffer[record.seq] = record
        return True

    def next_ready(self) -> Optional[LogRecord]:
        """The next contiguous record, if it has arrived."""
        return self.buffer.get(self.applied_seq + 1)


class FederationHub:
    """The fleet-wide view: replica engines per (region, shard), one
    global merger, one incident tracker, and the watermark gate.

    ``regions`` fixes the deterministic region order used to break
    ``dispatch_t`` ties (regions pump on the same tick grid, so ties are
    the common case, not the corner case).  ``num_shards`` and the
    correlation parameters must match the regions' own configuration --
    :meth:`SecurityOperationsCenter.federation_profile` exports exactly
    this shape (:meth:`from_profile` consumes it).
    """

    def __init__(self, regions: Sequence[str], num_shards: int = 1, *,
                 window_s: float = 8.0, k: int = 3,
                 dedup_window_s: float = 4.0,
                 max_lateness_s: float = 2.0,
                 columnar: bool = False) -> None:
        if not regions:
            raise ValueError("a federation needs at least one region")
        if len(set(regions)) != len(regions):
            raise ValueError("region names must be unique")
        self.regions: List[str] = list(regions)
        self.num_shards = num_shards
        self.receivers: Dict[str, SegmentReceiver] = {
            r: SegmentReceiver(r) for r in self.regions}
        self.engines: Dict[str, List[CorrelationEngine]] = {
            r: [CorrelationEngine(
                    window_s=window_s, k=k, dedup_window_s=dedup_window_s,
                    max_lateness_s=max_lateness_s)
                for _ in range(num_shards)]
            for r in self.regions}
        # Flattened in fixed (region, shard) order: merger cursors index
        # by engine position, so this order is part of the state contract.
        self._all_engines: List[CorrelationEngine] = [
            e for r in self.regions for e in self.engines[r]]
        self.merger = GlobalCampaignMerger(window_s=window_s, k=k)
        self.tracker = IncidentTracker()
        self._frontier: Dict[str, float] = {r: _NEG_INF for r in self.regions}
        self._finalized = False
        #: (applied_at_sim_time, detection) per fleet-wide verdict --
        #: E18's latency sample stream.
        self.detection_log: List[Tuple[float, CampaignDetection]] = []
        self.records_applied = 0
        self.pumps_applied = 0
        self.stalled_rounds = 0
        self.corrupt_unrouted = 0
        # Columnar apply path: replayed batch records are rebuilt as
        # ColumnarBatch arrays and fed through observe_columnar.  Off by
        # default (replay is rarely the bottleneck; E18's bench gate pins
        # the default path) and byte-identical when on -- the
        # differential tests run the hub both ways.  Replica engines
        # treat interner ids as batch-local labels, so one hub-wide
        # interner is sound across regions and shards.
        self.columnar = columnar
        self._interner: Optional[StringInterner] = None

    @classmethod
    def from_profile(cls, regions: Sequence[str],
                     profile: Dict[str, object],
                     columnar: bool = False) -> "FederationHub":
        """Build a hub from one region's
        :meth:`~repro.soc.center.SecurityOperationsCenter.\
federation_profile` (regions in a federation share a configuration).
        ``columnar`` is hub-local (how *this* process applies replayed
        batches), not part of the shared profile."""
        return cls(regions, int(profile["num_shards"]),
                   window_s=profile["window_s"], k=profile["k"],
                   dedup_window_s=profile["dedup_window_s"],
                   max_lateness_s=profile["max_lateness_s"],
                   columnar=columnar)

    # ------------------------------------------------------------------
    # Arrival + watermark-gated apply
    # ------------------------------------------------------------------
    def receive(self, data: bytes) -> bool:
        """Route one wire blob to its region's receiver (the shipment
        header names the region; an unknown region rejects)."""
        try:
            region = decode_shipment(data).region
        except CorruptRecord:
            # Can't even read the header: charge it to no region, but
            # count it so transport damage is never silent.
            self.corrupt_unrouted += 1
            return False
        receiver = self.receivers.get(region)
        if receiver is None:
            self.corrupt_unrouted += 1
            return False
        return receiver.receive(data)

    def advance(self, now: float) -> int:
        """Apply every *provably ordered* buffered record; returns the
        count applied.

        A candidate (the next contiguous record of some region) applies
        only when no other region can still produce a record sorting
        before it under the global ``(dispatch_t, region_order, seq)``
        order.  Regions with a ready candidate are compared directly;
        regions without one are bounded by their frontier -- the
        ``dispatch_t`` of their last applied record, below which their
        log (non-decreasing ``dispatch_t``) can never go back.  A tie at
        the frontier must stall: an announced frontier ``t`` still
        admits a future record *at* ``t``.
        """
        applied = 0
        while True:
            best_key: Optional[Tuple[float, int]] = None
            best_receiver: Optional[SegmentReceiver] = None
            best_record: Optional[LogRecord] = None
            ready: List[bool] = []
            for index, region in enumerate(self.regions):
                record = self.receivers[region].next_ready()
                ready.append(record is not None)
                if record is None:
                    continue
                key = (record.dispatch_t, index)
                if best_key is None or key < best_key:
                    best_key = key
                    best_receiver = self.receivers[region]
                    best_record = record
            if best_record is None:
                break
            if not self._finalized:
                safe = True
                for index, region in enumerate(self.regions):
                    if ready[index]:
                        continue  # its next record lost the key compare
                    # Worst case: this region's next record arrives at
                    # exactly its frontier time.
                    if (self._frontier[region], index) <= best_key:
                        safe = False
                        break
                if not safe:
                    self.stalled_rounds += 1
                    break
            best_receiver.applied_seq = best_record.seq
            del best_receiver.buffer[best_record.seq]
            self._frontier[best_receiver.region] = best_record.dispatch_t
            self._apply(now, best_receiver.region, best_record)
            applied += 1
        return applied

    def _apply(self, now: float, region: str, record: LogRecord) -> None:
        self.records_applied += 1
        if record.kind == "batch":
            if self.columnar:
                if self._interner is None:
                    self._interner = StringInterner()
                self.engines[region][record.shard].observe_columnar(
                    build_batch(list(record.events), self._interner))
            else:
                self.engines[region][record.shard].observe_batch(
                    list(record.events))
            return
        # Pump marker: the region merged campaigns here; the hub merges
        # fleet-wide, exactly as `recover_soc_state` replays a marker.
        self.pumps_applied += 1
        new_detections, new_vehicles = self.merger.merge(self._all_engines)
        for detection in new_detections:
            for engine in self._all_engines:
                engine.adopt_campaign(detection)
            self.tracker.open_from_detection(
                detection,
                SecurityOperationsCenter._base_severity(detection))
            self.detection_log.append((now, detection))
        for signature in sorted(new_vehicles):
            for vehicle in sorted(new_vehicles[signature]):
                self.tracker.attach_vehicle(signature, vehicle)

    def finalize(self, now: float) -> int:
        """End-of-stream flush: every region's log is known complete, so
        frontier gating is lifted and all buffered records drain in
        global sort order.  Returns the records applied."""
        self._finalized = True
        return self.advance(now)

    # ------------------------------------------------------------------
    # Verdict-level federation (the lightweight alternative)
    # ------------------------------------------------------------------
    def adopt_verdicts(
        self, detections: Sequence[CampaignDetection]
    ) -> Tuple[int, int]:
        """Adopt a region's exported verdicts without record replay.

        This is the cheap federation mode -- regions ship conclusions,
        not evidence -- so campaigns *below* every region's local ``k``
        are invisible to it (the record-shipping path exists precisely
        to catch those).  Returns ``(adopted, deduped)``; re-announced
        campaigns union their spread but never re-open incidents.
        """
        adopted = deduped = 0
        for detection in detections:
            fresh = self.merger.adopt_campaign(detection)
            if fresh is None:
                deduped += 1
                for vehicle in detection.vehicles:
                    self.tracker.attach_vehicle(detection.signature, vehicle)
                continue
            adopted += 1
            for engine in self._all_engines:
                engine.adopt_campaign(detection)
            self.tracker.open_from_detection(
                detection,
                SecurityOperationsCenter._base_severity(detection))
        return adopted, deduped

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def flagged_signatures(self) -> Set[str]:
        return set(self.merger.flagged_signatures)

    def unapplied(self) -> int:
        """Records received but not yet applied (in-order gaps included)."""
        return sum(len(r.buffer) for r in self.receivers.values())

    def analytics_snapshot(self) -> Dict[str, object]:
        """Canonical dump of the hub's analytic state.  Two hubs that
        applied the same record sequence produce byte-identical dumps
        under ``json.dumps(..., sort_keys=True)`` -- transport statistics
        (duplicates, corrupt counts) are deliberately excluded because
        they describe the journey, not the state."""
        return {
            "regions": list(self.regions),
            "num_shards": self.num_shards,
            "engines": {r: [e.snapshot() for e in self.engines[r]]
                        for r in self.regions},
            "merger": self.merger.snapshot(),
            "tracker": self.tracker.snapshot(),
            "frontiers": {r: _enc_time(self._frontier[r])
                          for r in self.regions},
            "applied_seq": {r: self.receivers[r].applied_seq
                            for r in self.regions},
        }

    def metrics(self) -> Dict[str, float]:
        out = {
            "regions": float(len(self.regions)),
            "records_applied": float(self.records_applied),
            "pumps_applied": float(self.pumps_applied),
            "stalled_rounds": float(self.stalled_rounds),
            "campaigns_flagged": float(len(self.merger.flagged_signatures)),
            "incidents_open": float(len(self.tracker.incidents)),
            "receiver_duplicates": float(
                sum(r.duplicates for r in self.receivers.values())),
            "corrupt_rejected": float(
                sum(r.corrupt_rejected for r in self.receivers.values())),
        }
        return out
