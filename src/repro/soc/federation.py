"""Federated multi-region VSOC: durable log-shipping + cross-region merge.

The paper's §7 closes on the need for a *centralized, fleet-wide
security policy* loop; a real OEM backend deploys that loop per
continent, not as one process.  This module federates M regional SOCs
(each its own sharded ingest + correlators + durable
:class:`~repro.soc.store.EventLog`) into one fleet-wide campaign view by
shipping the regions' **log-segment streams** -- the same self-framing
CRC records PR 4 made the recovery substrate -- instead of in-process
calls:

- :class:`SegmentShipper` tails a region's log with the checkpoint-
  seeking :meth:`~repro.soc.store.EventLog.tail` cursor and frames new
  records into :class:`Shipment` wire blobs.  The durable log *is* the
  retransmit buffer: a send refused by an outage window simply leaves
  the cursor in place and retries next pump, and a shipper restarted
  from seq 0 after a region kill re-ships history the receiver dedups.
- :class:`ShippingChannel` models the WAN: configurable base lag,
  jitter (which reorders), duplication, and outage windows, all driven
  by a seeded RNG so every delivery schedule is reproducible.
- :class:`SegmentReceiver` (one per region, inside the hub) verifies
  each shipment's CRC framing, drops corrupt blobs whole, dedups
  records by per-region sequence number, and buffers out-of-order
  arrivals until they are contiguous.
- :class:`FederationHub` replays received records through replica
  engines and one :class:`~repro.soc.correlate.GlobalCampaignMerger`,
  gated by **per-region low-watermarks**: a record is applied only once
  every other region's frontier proves no earlier record can still
  arrive.  The applied sequence is therefore exactly the global
  ``(dispatch_t, region, seq)`` sort of all regions' streams --
  *independent of delivery interleaving* -- which is what makes the
  hub's final state byte-identical across any bounded-lag reordering
  (the Hypothesis property in ``tests/test_soc_federation.py``) and
  identical to an in-order union replay at zero lag.

The price of that determinism is strict consistency: a partitioned
region freezes its frontier, which stalls the *global* merge until the
partition heals (the hub cannot prove order without it).  E18's
partition/heal cell measures exactly that trade -- and
``consistency="optimistic"`` buys the availability back.  When every
region blocking the gate has been stale past ``staleness_budget_s``
the hub freezes a **reconciliation frontier** (snapshots of the
analytic state at the last provably-ordered point), keeps applying the
healthy regions' records beyond it, and tags the resulting verdicts
``provisional=True``.  When the laggard catches up -- or is declared
dead -- a deterministic reconciliation pass replays the frontier-to-now
union in canonical ``(dispatch_t, region, seq)`` order into a shadow
rebuild, classifies every provisional verdict (confirm / amend /
retract, journaled as :class:`~repro.soc.incident.Amendment`), and
swaps the shadow in, so the reconciled analytic snapshot is
byte-identical to what the strict gate would have produced from the
same shipments (the differential property in
``tests/test_soc_chaos.py``).
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.soc.center import SecurityOperationsCenter
from repro.soc.columnar import StringInterner, build_batch
from repro.soc.correlate import (
    CampaignDetection,
    CorrelationEngine,
    GlobalCampaignMerger,
)
from repro.soc.incident import Amendment, IncidentTracker
from repro.soc.store import (
    _HEADER,
    _record_from_payload,
    _dumps,
    CorruptRecord,
    EventLog,
    LogRecord,
    frame_payload,
    record_payload,
)

_NEG_INF = float("-inf")


def _enc_time(t: float) -> Optional[float]:
    return None if t == _NEG_INF else t


# ----------------------------------------------------------------------
# Wire format: shipments of CRC-framed log records
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Shipment:
    """One wire blob: a contiguous run of one region's log records.

    ``watermark`` is the ``dispatch_t`` of the last record -- proven by
    the log content itself, never by the shipper's clock, so a replayed
    shipment carries the same bytes no matter when it is (re)sent.
    """

    region: str
    first_seq: int
    last_seq: int
    watermark: float
    records: Tuple[LogRecord, ...]


def encode_shipment(shipment: Shipment) -> bytes:
    """Serialize: one framed header + one framed payload per record,
    each in the log's own ``u32 len | u32 CRC32 | payload`` envelope, so
    the wire format self-verifies exactly like a segment on disk."""
    if not shipment.records:
        raise ValueError("a shipment carries at least one record")
    head = _dumps(["h", shipment.region, shipment.first_seq,
                   shipment.last_seq, shipment.watermark])
    parts = [frame_payload(head)]
    for record in shipment.records:
        parts.append(frame_payload(record_payload(record)))
    return b"".join(parts)


def decode_shipment(data: bytes) -> Shipment:
    """Parse + verify a shipment; raises :class:`CorruptRecord` on any
    framing/CRC/consistency damage (a bad blob is rejected whole)."""
    payloads: List[bytes] = []
    offset = 0
    while offset < len(data):
        if len(data) - offset < _HEADER.size:
            raise CorruptRecord("shipment: short frame header")
        length, crc = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        payload = data[start:start + length]
        if len(payload) < length or zlib.crc32(payload) != crc:
            raise CorruptRecord("shipment: frame failed length/CRC check")
        payloads.append(payload)
        offset = start + length
    if not payloads:
        raise CorruptRecord("shipment: empty blob")
    head = json.loads(payloads[0].decode("utf-8"))
    if head[0] != "h":
        raise CorruptRecord(f"shipment: bad header tag {head[0]!r}")
    _, region, first_seq, last_seq, watermark = head
    first_seq, last_seq = int(first_seq), int(last_seq)
    if len(payloads) - 1 != last_seq - first_seq + 1:
        raise CorruptRecord("shipment: record count does not match header")
    records = tuple(_record_from_payload(first_seq + i, p)
                    for i, p in enumerate(payloads[1:]))
    if records[-1].dispatch_t != float(watermark):
        raise CorruptRecord("shipment: watermark does not match last record")
    return Shipment(region=region, first_seq=first_seq, last_seq=last_seq,
                    watermark=float(watermark), records=records)


# ----------------------------------------------------------------------
# Transport model
# ----------------------------------------------------------------------

class ShippingChannel:
    """A deterministic, seeded WAN model for one region -> hub link.

    ``lag_s`` is the base one-way delay; ``jitter_s`` adds a uniform
    random extra per blob (two blobs sent back-to-back can therefore
    arrive *reordered*); with probability ``duplicate_p`` a blob is
    delivered twice; during any ``outages`` window the link refuses
    sends outright (:meth:`send` returns ``False`` -- the shipper keeps
    its cursor and the durable log retransmits later, so an outage
    loses nothing, it only delays).

    Outage windows are **half-open** ``[t0, t1)``: a send at exactly
    ``t0`` is refused, a send at exactly ``t1`` succeeds.  That
    convention is part of the wire contract -- retry loops schedule
    their next pump *at* the advertised outage end, so an inclusive
    right edge would silently eat exactly that retry (pinned by
    ``test_outage_window_boundaries``).  ``outage_refused`` counts the
    refusals (today every refusal is an outage refusal; the split name
    keeps the stat meaningful if other refusal reasons appear).
    """

    def __init__(self, rng, lag_s: float = 0.0, jitter_s: float = 0.0,
                 duplicate_p: float = 0.0,
                 outages: Sequence[Tuple[float, float]] = ()) -> None:
        if lag_s < 0 or jitter_s < 0 or not (0.0 <= duplicate_p <= 1.0):
            raise ValueError("bad channel parameters")
        self._rng = rng
        self.lag_s = lag_s
        self.jitter_s = jitter_s
        self.duplicate_p = duplicate_p
        self.outages = tuple(outages)
        self._in_flight: List[Tuple[float, int, bytes]] = []
        self._tie = 0
        self._corrupt_pending = 0
        self.sent = 0
        self.refused = 0
        self.outage_refused = 0
        self.duplicated = 0
        self.corrupted = 0

    def in_outage(self, now: float) -> bool:
        """True inside any half-open window: ``t0 <= now < t1``."""
        return any(t0 <= now < t1 for t0, t1 in self.outages)

    def send(self, now: float, data: bytes) -> bool:
        if self.in_outage(now):
            self.refused += 1
            self.outage_refused += 1
            return False
        self.sent += 1
        self._enqueue(now, data)
        if self.duplicate_p and self._rng.random() < self.duplicate_p:
            self.duplicated += 1
            self._enqueue(now, data)
        return True

    def corrupt_next(self, n: int = 1) -> None:
        """Arrange for the next ``n`` delivered blobs to arrive torn
        (one byte flipped at a seeded offset).  The chaos harness's
        torn-shipment fault: damage happens on the wire, detection
        happens in the receiver's CRC check, recovery happens via the
        durable-log retransmit."""
        if n < 1:
            raise ValueError("corrupt_next needs n >= 1")
        self._corrupt_pending += n

    def _enqueue(self, now: float, data: bytes) -> None:
        deliver_at = now + self.lag_s
        if self.jitter_s:
            deliver_at += self._rng.uniform(0.0, self.jitter_s)
        self._tie += 1
        heappush(self._in_flight, (deliver_at, self._tie, data))

    def deliver(self, now: float) -> List[bytes]:
        """Pop every blob whose delivery time has arrived, in delivery
        order (``deliver(float('inf'))`` drains the link)."""
        out: List[bytes] = []
        while self._in_flight and self._in_flight[0][0] <= now:
            data = heappop(self._in_flight)[2]
            if self._corrupt_pending > 0:
                self._corrupt_pending -= 1
                self.corrupted += 1
                torn = bytearray(data)
                torn[self._rng.randrange(len(torn))] ^= 0xFF
                data = bytes(torn)
            out.append(data)
        return out

    def drop_in_flight(self) -> int:
        """Lose everything currently on the wire (a region kill takes
        its half-open connections with it); returns the count dropped."""
        dropped = len(self._in_flight)
        self._in_flight = []
        return dropped

    @property
    def in_flight(self) -> int:
        return len(self._in_flight)


class SegmentShipper:
    """Tails one region's :class:`~repro.soc.store.EventLog` and ships
    new records over a :class:`ShippingChannel`.

    Restart semantics: the only durable state is the log itself.  A
    fresh shipper (cursor 0) re-tails from the beginning and re-ships
    everything -- at-least-once delivery, made exactly-once by the
    receiver's per-region seq dedup.
    """

    def __init__(self, region: str, log: EventLog,
                 channel: ShippingChannel, *,
                 max_batch_records: int = 256,
                 shipped_seq: int = 0) -> None:
        if max_batch_records < 1:
            raise ValueError("max_batch_records must be >= 1")
        self.region = region
        self.log = log
        self.channel = channel
        self.max_batch_records = max_batch_records
        self.shipped_seq = shipped_seq
        self.shipments_sent = 0
        self.records_shipped = 0
        self.send_refused = 0

    def pump(self, now: float) -> int:
        """Ship every record past the cursor; returns records shipped.
        On a refused send the cursor stays put -- the log retransmits."""
        if self.channel.in_outage(now):
            # Don't even tail: the link is down and the cursor is safe.
            self.send_refused += 1
            return 0
        records = list(self.log.tail(after_seq=self.shipped_seq))
        shipped = 0
        index = 0
        while index < len(records):
            chunk = records[index:index + self.max_batch_records]
            shipment = Shipment(
                region=self.region,
                first_seq=chunk[0].seq,
                last_seq=chunk[-1].seq,
                watermark=chunk[-1].dispatch_t,
                records=tuple(chunk),
            )
            if not self.channel.send(now, encode_shipment(shipment)):
                self.send_refused += 1
                break
            self.shipped_seq = chunk[-1].seq
            self.shipments_sent += 1
            self.records_shipped += len(chunk)
            shipped += len(chunk)
            index += len(chunk)
        return shipped


# ----------------------------------------------------------------------
# Hub side
# ----------------------------------------------------------------------

class SegmentReceiver:
    """Per-region arrival state inside the hub: CRC-checked decode,
    seq dedup (duplication + re-ship after restart), and an out-of-order
    buffer keyed by seq so only contiguous records ever apply."""

    def __init__(self, region: str) -> None:
        self.region = region
        self.applied_seq = 0
        self.buffer: Dict[int, LogRecord] = {}
        self.shipments_received = 0
        self.records_received = 0
        self.duplicates = 0
        self.corrupt_rejected = 0

    def receive(self, data: bytes) -> bool:
        """Ingest one wire blob; ``False`` if it was corrupt (counted
        and rejected whole -- never half-applied)."""
        try:
            shipment = decode_shipment(data)
        except CorruptRecord:
            self.corrupt_rejected += 1
            return False
        if shipment.region != self.region:
            self.corrupt_rejected += 1
            return False
        self.shipments_received += 1
        for record in shipment.records:
            self.records_received += 1
            if record.seq <= self.applied_seq or record.seq in self.buffer:
                self.duplicates += 1
            else:
                self.buffer[record.seq] = record
        return True

    def next_ready(self) -> Optional[LogRecord]:
        """The next contiguous record, if it has arrived."""
        return self.buffer.get(self.applied_seq + 1)


class _AnalyticState:
    """The hub's replayable analytic core: replica engines per
    (region, shard), the global merger, and the incident tracker.

    Bundling these three makes the optimistic mode's central move --
    *snapshot, replay into a shadow, swap* -- a first-class operation
    instead of parallel bookkeeping across hub fields.  The engine list
    is flattened in fixed (region, shard) order: merger cursors index by
    engine position, so that order is part of the state contract.
    """

    def __init__(self, regions: Sequence[str],
                 engines: Dict[str, List[CorrelationEngine]],
                 merger: GlobalCampaignMerger,
                 tracker: IncidentTracker) -> None:
        self.regions = list(regions)
        self.engines = engines
        self.all_engines: List[CorrelationEngine] = [
            e for r in self.regions for e in engines[r]]
        self.merger = merger
        self.tracker = tracker

    @classmethod
    def fresh(cls, regions: Sequence[str], num_shards: int, *,
              window_s: float, k: int, dedup_window_s: float,
              max_lateness_s: float) -> "_AnalyticState":
        engines = {
            r: [CorrelationEngine(
                    window_s=window_s, k=k, dedup_window_s=dedup_window_s,
                    max_lateness_s=max_lateness_s)
                for _ in range(num_shards)]
            for r in regions}
        return cls(regions, engines,
                   GlobalCampaignMerger(window_s=window_s, k=k),
                   IncidentTracker())

    @classmethod
    def from_snapshots(cls, regions: Sequence[str],
                       base: Dict[str, object]) -> "_AnalyticState":
        """Rebuild from the frozen snapshots of a reconciliation base
        (the same restore path ``recover_soc_state`` trusts)."""
        engines = {
            r: [CorrelationEngine.from_snapshot(s)
                for s in base["engines"][r]]
            for r in regions}
        return cls(regions, engines,
                   GlobalCampaignMerger.from_snapshot(base["merger"]),
                   IncidentTracker.from_snapshot(base["tracker"]))

    def apply(self, region: str, record: LogRecord, *,
              provisional: bool = False, columnar: bool = False,
              interner: Optional[StringInterner] = None,
              ) -> List[CampaignDetection]:
        """Apply one log record; returns the fleet-wide detections it
        produced (empty for batch records)."""
        if record.kind == "batch":
            if columnar:
                self.engines[region][record.shard].observe_columnar(
                    build_batch(list(record.events), interner))
            else:
                self.engines[region][record.shard].observe_batch(
                    list(record.events))
            return []
        # Pump marker: the region merged campaigns here; the hub merges
        # fleet-wide, exactly as `recover_soc_state` replays a marker.
        new_detections, new_vehicles = self.merger.merge(self.all_engines)
        for detection in new_detections:
            for engine in self.all_engines:
                engine.adopt_campaign(detection)
            self.tracker.open_from_detection(
                detection,
                SecurityOperationsCenter._base_severity(detection),
                provisional=provisional)
        for signature in sorted(new_vehicles):
            for vehicle in sorted(new_vehicles[signature]):
                self.tracker.attach_vehicle(signature, vehicle)
        return new_detections


class FederationHub:
    """The fleet-wide view: replica engines per (region, shard), one
    global merger, one incident tracker, and the watermark gate.

    ``regions`` fixes the deterministic region order used to break
    ``dispatch_t`` ties (regions pump on the same tick grid, so ties are
    the common case, not the corner case).  ``num_shards`` and the
    correlation parameters must match the regions' own configuration --
    :meth:`SecurityOperationsCenter.federation_profile` exports exactly
    this shape (:meth:`from_profile` consumes it).

    ``consistency`` picks the partition behavior:

    - ``"strict"`` (default): the watermark gate stalls the global merge
      until order is provable.  Verdicts are final the moment they fire.
    - ``"optimistic"``: when *every* region blocking the gate has made
      no watermark progress for longer than ``staleness_budget_s``, the
      hub freezes the reconciliation base and keeps applying the healthy
      regions' records provisionally (an **episode**).  Verdicts fired
      inside an episode open ``provisional=True`` incidents and are
      journaled in :attr:`provisional_log`.  Once every live region's
      watermark provably passes the episode's records (or at
      :meth:`finalize`), :meth:`_reconcile` replays the episode suffix
      in canonical order into a shadow built from the frozen base,
      classifies each provisional verdict (confirm / amend / retract --
      :class:`~repro.soc.incident.Amendment`), and swaps the shadow in:
      the analytic snapshot afterwards is byte-identical to the strict
      gate's.
    """

    def __init__(self, regions: Sequence[str], num_shards: int = 1, *,
                 window_s: float = 8.0, k: int = 3,
                 dedup_window_s: float = 4.0,
                 max_lateness_s: float = 2.0,
                 columnar: bool = False,
                 consistency: str = "strict",
                 staleness_budget_s: float = 2.0) -> None:
        if not regions:
            raise ValueError("a federation needs at least one region")
        if len(set(regions)) != len(regions):
            raise ValueError("region names must be unique")
        if consistency not in ("strict", "optimistic"):
            raise ValueError(f"unknown consistency mode {consistency!r}")
        if staleness_budget_s < 0:
            raise ValueError("staleness_budget_s must be >= 0")
        self.regions: List[str] = list(regions)
        self.num_shards = num_shards
        self.consistency = consistency
        self.staleness_budget_s = staleness_budget_s
        self.receivers: Dict[str, SegmentReceiver] = {
            r: SegmentReceiver(r) for r in self.regions}
        self._state = _AnalyticState.fresh(
            self.regions, num_shards, window_s=window_s, k=k,
            dedup_window_s=dedup_window_s, max_lateness_s=max_lateness_s)
        self._region_index: Dict[str, int] = {
            r: i for i, r in enumerate(self.regions)}
        self._frontier: Dict[str, float] = {r: _NEG_INF for r in self.regions}
        self._finalized = False
        #: (applied_at_sim_time, detection) per fleet-wide verdict --
        #: E18's latency sample stream.
        self.detection_log: List[Tuple[float, CampaignDetection]] = []
        self.records_applied = 0
        self.pumps_applied = 0
        self.stalled_rounds = 0
        self.corrupt_unrouted = 0
        # Columnar apply path: replayed batch records are rebuilt as
        # ColumnarBatch arrays and fed through observe_columnar.  Off by
        # default (replay is rarely the bottleneck; E18's bench gate pins
        # the default path) and byte-identical when on -- the
        # differential tests run the hub both ways.  Replica engines
        # treat interner ids as batch-local labels, so one hub-wide
        # interner is sound across regions and shards.
        self.columnar = columnar
        self._interner: Optional[StringInterner] = None
        # --- partition observability + optimistic episodes ------------
        # _bound[r]: dispatch_t of r's last *contiguously known* record
        # (applied or buffered without gaps) -- the best provable lower
        # bound on where r's stream stands.  _known_seq caches the scan
        # cursor so the contiguity walk is incremental, not quadratic.
        self._now = _NEG_INF
        self._bound: Dict[str, float] = {r: _NEG_INF for r in self.regions}
        self._known_seq: Dict[str, int] = {r: 0 for r in self.regions}
        self._last_progress: Dict[str, float] = {}
        self._dead: Set[str] = set()
        self._episode_active = False
        self._base: Optional[Dict[str, object]] = None
        self._suffix: List[Tuple[str, LogRecord]] = []
        self._provisional: List[Tuple[float, CampaignDetection]] = []
        self._hi_by_region: Dict[str, Tuple[float, int]] = {}
        #: Permanent journal of every provisional verdict ever emitted
        #: (reconciliation rewrites detection_log, never this).
        self.provisional_log: List[Tuple[float, CampaignDetection]] = []
        #: Cumulative reconciliation outcomes, export feed for
        #: :meth:`export_amendments`.
        self.amendments: List[Amendment] = []
        self.episodes = 0
        self.reconciliations = 0
        self.provisional_verdicts = 0
        self.amendments_confirmed = 0
        self.amendments_amended = 0
        self.amendments_retracted = 0
        self.late_verdicts = 0
        self.dead_rejected = 0
        self.dead_dropped = 0

    # -- analytic state is swapped wholesale at reconciliation; expose
    # -- the live pieces under their historical names.
    @property
    def engines(self) -> Dict[str, List[CorrelationEngine]]:
        return self._state.engines

    @property
    def merger(self) -> GlobalCampaignMerger:
        return self._state.merger

    @property
    def tracker(self) -> IncidentTracker:
        return self._state.tracker

    @property
    def _all_engines(self) -> List[CorrelationEngine]:
        return self._state.all_engines

    @classmethod
    def from_profile(cls, regions: Sequence[str],
                     profile: Dict[str, object],
                     columnar: bool = False,
                     consistency: str = "strict",
                     staleness_budget_s: float = 2.0) -> "FederationHub":
        """Build a hub from one region's
        :meth:`~repro.soc.center.SecurityOperationsCenter.\
federation_profile` (regions in a federation share a configuration).
        ``columnar``, ``consistency`` and ``staleness_budget_s`` are
        hub-local (how *this* process applies replayed batches and rides
        out partitions), not part of the shared profile."""
        return cls(regions, int(profile["num_shards"]),
                   window_s=profile["window_s"], k=profile["k"],
                   dedup_window_s=profile["dedup_window_s"],
                   max_lateness_s=profile["max_lateness_s"],
                   columnar=columnar, consistency=consistency,
                   staleness_budget_s=staleness_budget_s)

    # ------------------------------------------------------------------
    # Arrival + watermark-gated apply
    # ------------------------------------------------------------------
    def receive(self, data: bytes) -> bool:
        """Route one wire blob to its region's receiver (the shipment
        header names the region; an unknown region rejects)."""
        try:
            region = decode_shipment(data).region
        except CorruptRecord:
            # Can't even read the header: charge it to no region, but
            # count it so transport damage is never silent.
            self.corrupt_unrouted += 1
            return False
        receiver = self.receivers.get(region)
        if receiver is None:
            self.corrupt_unrouted += 1
            return False
        if region in self._dead:
            # A declared-dead region's stream is truncated: late blobs
            # are refused whole so its applied prefix stays frozen.
            self.dead_rejected += 1
            return False
        return receiver.receive(data)

    def _note_progress(self) -> None:
        """Advance each region's contiguous-knowledge bound and stamp
        progress time.  ``_known_seq`` remembers how far the contiguity
        walk got, so each buffered record is scanned once ever."""
        for region in self.regions:
            if region in self._dead:
                continue
            receiver = self.receivers[region]
            if region not in self._last_progress:
                self._last_progress[region] = self._now
            seq = max(self._known_seq[region], receiver.applied_seq)
            while seq + 1 in receiver.buffer:
                seq += 1
            self._known_seq[region] = seq
            if seq > receiver.applied_seq:
                bound = receiver.buffer[seq].dispatch_t
            else:
                bound = self._frontier[region]
            if bound > self._bound[region]:
                self._bound[region] = bound
                self._last_progress[region] = self._now

    def stall_age_s(self, region: str) -> float:
        """Seconds since this region's watermark bound last advanced
        (0.0 until the hub has observed any time at all)."""
        if self._now == _NEG_INF or region in self._dead:
            return 0.0
        return max(0.0, self._now - self._last_progress.get(region, self._now))

    def advance(self, now: float) -> int:
        """Apply every *provably ordered* buffered record; returns the
        count applied.

        A candidate (the next contiguous record of some region) applies
        only when no other region can still produce a record sorting
        before it under the global ``(dispatch_t, region_order, seq)``
        order.  Regions with a ready candidate are compared directly;
        regions without one are bounded by their frontier -- the
        ``dispatch_t`` of their last applied record, below which their
        log (non-decreasing ``dispatch_t``) can never go back.  A tie at
        the frontier must stall: an announced frontier ``t`` still
        admits a future record *at* ``t``.

        In ``optimistic`` mode a stall where every blocking region has
        exceeded ``staleness_budget_s`` opens an episode instead of
        stalling: the base state is frozen and records apply
        provisionally (unordered across regions, still seq-ordered
        within each).  The episode closes via :meth:`_reconcile` once
        every live region's bound provably passes the episode's records.
        """
        self._now = max(self._now, now)
        self._note_progress()
        applied = 0
        while True:
            best_key: Optional[Tuple[float, int]] = None
            best_receiver: Optional[SegmentReceiver] = None
            best_record: Optional[LogRecord] = None
            ready: List[bool] = []
            for index, region in enumerate(self.regions):
                record = self.receivers[region].next_ready()
                ready.append(record is not None)
                if record is None:
                    continue
                key = (record.dispatch_t, index)
                if best_key is None or key < best_key:
                    best_key = key
                    best_receiver = self.receivers[region]
                    best_record = record
            if best_record is None:
                break
            if not self._finalized and not self._episode_active:
                blockers: List[str] = []
                for index, region in enumerate(self.regions):
                    if ready[index] or region in self._dead:
                        continue  # lost the key compare / can't speak
                    # Worst case: this region's next record arrives at
                    # exactly its frontier time.
                    if (self._frontier[region], index) <= best_key:
                        blockers.append(region)
                if blockers:
                    if (self.consistency == "optimistic"
                            and all(self.stall_age_s(r)
                                    > self.staleness_budget_s
                                    for r in blockers)):
                        self._begin_episode()
                    else:
                        self.stalled_rounds += 1
                        break
            self._pop_and_apply(now, best_receiver, best_record)
            applied += 1
        if self._episode_active and (self._finalized
                                     or self._reconcile_ready()):
            self._reconcile(self._now)
        return applied

    def _pop_and_apply(self, now: float, receiver: SegmentReceiver,
                       record: LogRecord) -> None:
        receiver.applied_seq = record.seq
        del receiver.buffer[record.seq]
        region = receiver.region
        self._frontier[region] = record.dispatch_t
        if record.dispatch_t > self._bound[region]:
            self._bound[region] = record.dispatch_t
        self.records_applied += 1
        if record.kind != "batch":
            self.pumps_applied += 1
        if self.columnar and self._interner is None:
            self._interner = StringInterner()
        new_detections = self._state.apply(
            region, record, provisional=self._episode_active,
            columnar=self.columnar, interner=self._interner)
        if self._episode_active:
            self._suffix.append((region, record))
            key = (record.dispatch_t, self._region_index[region])
            prior = self._hi_by_region.get(region)
            if prior is None or key > prior:
                self._hi_by_region[region] = key
        for detection in new_detections:
            self.detection_log.append((now, detection))
            if self._episode_active:
                self.provisional_verdicts += 1
                self._provisional.append((now, detection))
                self.provisional_log.append((now, detection))

    # ------------------------------------------------------------------
    # Optimistic episodes
    # ------------------------------------------------------------------
    def _begin_episode(self) -> None:
        """Freeze the reconciliation base: the analytic state at the
        last provably-ordered point.  Everything applied from here until
        :meth:`_reconcile` is provisional."""
        self._episode_active = True
        self.episodes += 1
        self._base = {
            "engines": {r: [e.snapshot() for e in self._state.engines[r]]
                        for r in self.regions},
            "merger": self._state.merger.snapshot(),
            "tracker": self._state.tracker.snapshot(),
            "detection_log_len": len(self.detection_log),
        }
        self._suffix = []
        self._provisional = []
        self._hi_by_region = {}

    def _reconcile_ready(self) -> bool:
        """True once no live region can still produce a record sorting
        before any record already applied provisionally: for every live
        region, its worst-case next key ``(bound, index)`` must beat
        every *other* region's highest suffix key.  (Its own suffix is
        always safe -- within a region, applies stay in seq order.)"""
        if not self._suffix:
            return True
        for region in self.regions:
            if region in self._dead:
                continue
            bound_key = (self._bound[region], self._region_index[region])
            for other, hi_key in self._hi_by_region.items():
                if other != region and bound_key < hi_key:
                    return False
        return True

    def _reconcile(self, now: float) -> None:
        """Close the episode deterministically.

        Replay the episode suffix in canonical ``(dispatch_t, region,
        seq)`` order into a shadow built from the frozen base -- exactly
        the sequence the strict gate would have applied -- then classify
        every provisional verdict against the shadow's (confirm: the
        identical detection fired; amend: same signature, different
        spread/timing; retract: it never fired), journal the
        :class:`~repro.soc.incident.Amendment` for each, rebuild the
        detection log (confirmed/amended verdicts keep their *early*
        provisional entry as-is -- the log journals what was reported
        when, which is the availability win E18 measures, while the
        amendment carries the correction and the swapped-in state
        carries the canonical detection; retracted entries drop;
        shadow-only verdicts land now as ``late``), and swap the shadow
        in.  Frontiers and applied seqs need no repair: per-region
        applies always happen in seq order, so they already match the
        strict twin.
        """
        self.reconciliations += 1
        order = self._region_index
        suffix = sorted(
            self._suffix,
            key=lambda item: (item[1].dispatch_t, order[item[0]],
                              item[1].seq))
        shadow = _AnalyticState.from_snapshots(self.regions, self._base)
        shadow_detections: List[CampaignDetection] = []
        for region, record in suffix:
            # Scalar replay on purpose: columnar apply is byte-identical
            # (pinned since PR 6) and reconciliation is off the hot path.
            shadow_detections.extend(shadow.apply(region, record))
        shadow_by_sig = {d.signature: d for d in shadow_detections}
        old_tracker = self._state.tracker
        fresh: List[Amendment] = []
        kept: List[Tuple[float, CampaignDetection]] = []
        for t_prov, d_prov in self._provisional:
            confirmed = shadow_by_sig.pop(d_prov.signature, None)
            if confirmed is None:
                self.amendments_retracted += 1
                incident = old_tracker.incident_for(d_prov.signature)
                fresh.append(Amendment(
                    kind="retract", signature=d_prov.signature, t=now,
                    incident_id=(incident.incident_id
                                 if incident else None),
                    vehicles_removed=len(d_prov.vehicles)))
                continue
            kept.append((t_prov, d_prov))
            shadow_incident = shadow.tracker.incident_for(d_prov.signature)
            incident_id = (shadow_incident.incident_id
                           if shadow_incident else None)
            if confirmed == d_prov:
                self.amendments_confirmed += 1
                fresh.append(Amendment(
                    kind="confirm", signature=d_prov.signature, t=now,
                    incident_id=incident_id))
            else:
                self.amendments_amended += 1
                prov_vehicles = set(d_prov.vehicles)
                true_vehicles = set(confirmed.vehicles)
                fresh.append(Amendment(
                    kind="amend", signature=d_prov.signature, t=now,
                    incident_id=incident_id,
                    vehicles_added=len(true_vehicles - prov_vehicles),
                    vehicles_removed=len(prov_vehicles - true_vehicles)))
        late = [(now, d) for d in shadow_detections
                if d.signature in shadow_by_sig]
        self.late_verdicts += len(late)
        head = self.detection_log[:self._base["detection_log_len"]]
        self.detection_log = head + kept + late
        # The shadow tracker restarts from the base snapshot (the
        # amendment journal is journey, not state) -- re-seat the full
        # journal so tracker-level history survives the swap.
        shadow.tracker.amendments = list(old_tracker.amendments)
        for amendment in fresh:
            shadow.tracker.record_amendment(amendment)
        self.amendments.extend(fresh)
        self._state = shadow
        self._episode_active = False
        self._base = None
        self._suffix = []
        self._provisional = []
        self._hi_by_region = {}

    def declare_dead(self, region: str) -> int:
        """Administratively remove a region from the federation: its
        stream is truncated at the applied prefix, buffered gap records
        are discarded (counted in ``dead_dropped``), future blobs are
        refused, and the gate stops waiting on it -- which also lets an
        open episode reconcile without the corpse.  Returns the number
        of buffered records discarded."""
        if region not in self._region_index:
            raise ValueError(f"unknown region {region!r}")
        if region in self._dead:
            return 0
        self._dead.add(region)
        receiver = self.receivers[region]
        dropped = len(receiver.buffer)
        receiver.buffer.clear()
        self._known_seq[region] = receiver.applied_seq
        self.dead_dropped += dropped
        return dropped

    @property
    def dead_regions(self) -> Set[str]:
        return set(self._dead)

    @property
    def episode_active(self) -> bool:
        return self._episode_active

    def export_amendments(self, after: int = 0) -> List[Dict[str, object]]:
        """JSON-safe amendment feed (regions poll with their cursor --
        same idiom as the verdict feed)."""
        return [a.as_dict() for a in self.amendments[after:]]

    def finalize(self, now: float) -> int:
        """End-of-stream flush: every region's log is known complete, so
        frontier gating is lifted and all buffered records drain in
        global sort order; an open episode reconciles afterwards.
        Returns the records applied."""
        self._finalized = True
        return self.advance(now)

    # ------------------------------------------------------------------
    # Verdict-level federation (the lightweight alternative)
    # ------------------------------------------------------------------
    def adopt_verdicts(
        self, detections: Sequence[CampaignDetection]
    ) -> Tuple[int, int]:
        """Adopt a region's exported verdicts without record replay.

        This is the cheap federation mode -- regions ship conclusions,
        not evidence -- so campaigns *below* every region's local ``k``
        are invisible to it (the record-shipping path exists precisely
        to catch those).  Returns ``(adopted, deduped)``; re-announced
        campaigns union their spread but never re-open incidents.
        """
        adopted = deduped = 0
        for detection in detections:
            fresh = self.merger.adopt_campaign(detection)
            if fresh is None:
                deduped += 1
                for vehicle in detection.vehicles:
                    self.tracker.attach_vehicle(detection.signature, vehicle)
                continue
            adopted += 1
            for engine in self._all_engines:
                engine.adopt_campaign(detection)
            self.tracker.open_from_detection(
                detection,
                SecurityOperationsCenter._base_severity(detection))
        return adopted, deduped

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def flagged_signatures(self) -> Set[str]:
        return set(self.merger.flagged_signatures)

    def unapplied(self) -> int:
        """Records received but not yet applied (in-order gaps included)."""
        return sum(len(r.buffer) for r in self.receivers.values())

    def analytics_snapshot(self) -> Dict[str, object]:
        """Canonical dump of the hub's analytic state.  Two hubs that
        applied the same record sequence produce byte-identical dumps
        under ``json.dumps(..., sort_keys=True)`` -- transport statistics
        (duplicates, corrupt counts) are deliberately excluded because
        they describe the journey, not the state."""
        return {
            "regions": list(self.regions),
            "num_shards": self.num_shards,
            "engines": {r: [e.snapshot() for e in self.engines[r]]
                        for r in self.regions},
            "merger": self.merger.snapshot(),
            "tracker": self.tracker.snapshot(),
            "frontiers": {r: _enc_time(self._frontier[r])
                          for r in self.regions},
            "applied_seq": {r: self.receivers[r].applied_seq
                            for r in self.regions},
        }

    def watermark_lag_s(self, region: str) -> float:
        """How far this region's contiguous-knowledge bound trails the
        most-advanced live region's (0.0 when nothing is comparable yet
        or the region is dead).  A growing lag is a brewing partition
        *before* the gate visibly stalls."""
        if region in self._dead:
            return 0.0
        bounds = [self._bound[r] for r in self.regions
                  if r not in self._dead and self._bound[r] != _NEG_INF]
        if not bounds or self._bound[region] == _NEG_INF:
            return 0.0
        return max(0.0, max(bounds) - self._bound[region])

    def metrics(self) -> Dict[str, float]:
        out = {
            "regions": float(len(self.regions)),
            "records_applied": float(self.records_applied),
            "pumps_applied": float(self.pumps_applied),
            "stalled_rounds": float(self.stalled_rounds),
            "campaigns_flagged": float(len(self.merger.flagged_signatures)),
            "incidents_open": float(len(self.tracker.incidents)),
            "receiver_duplicates": float(
                sum(r.duplicates for r in self.receivers.values())),
            "corrupt_rejected": float(
                sum(r.corrupt_rejected for r in self.receivers.values())),
            "episodes": float(self.episodes),
            "reconciliations": float(self.reconciliations),
            "episode_active": float(self._episode_active),
            "provisional_verdicts": float(self.provisional_verdicts),
            "amendments_confirmed": float(self.amendments_confirmed),
            "amendments_amended": float(self.amendments_amended),
            "amendments_retracted": float(self.amendments_retracted),
            "late_verdicts": float(self.late_verdicts),
            "dead_regions": float(len(self._dead)),
            "dead_rejected": float(self.dead_rejected),
            "dead_dropped": float(self.dead_dropped),
        }
        stall_ages = []
        lags = []
        for region in self.regions:
            age = self.stall_age_s(region)
            lag = self.watermark_lag_s(region)
            out[f"stall_age_s[{region}]"] = age
            out[f"watermark_lag_s[{region}]"] = lag
            stall_ages.append(age)
            lags.append(lag)
        out["stall_age_max_s"] = max(stall_ages) if stall_ages else 0.0
        out["watermark_lag_max_s"] = max(lags) if lags else 0.0
        return out
