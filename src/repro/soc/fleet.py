"""Fleet model + seeded telemetry workload generator for the VSOC.

Scale discipline: the generator never materializes per-vehicle objects
or schedules per-vehicle callbacks -- state is O(compromised + events),
and each simulation tick draws event *counts* from seeded Poisson
streams and attributes them to vehicle indices on demand.  That is what
lets E17 sweep fleet sizes to 10^5 in pure Python; past that, the
numpy-vectorized path (batch Poisson/index/jitter draws plus bulk
source suppression under full congestion) carries the 10^6 cell.

Three traffic classes:

- **benign noise**: per-vehicle one-off signatures (a lone IDS false
  positive) plus a small pool of *ambient* signatures shared fleet-wide
  (parking-garage RF interference tripping PKES telemetry, a flaky
  infotainment build) -- the false-positive surface the correlator's
  k-of-window rule has to reject;
- **attack campaigns** (:class:`AttackCampaign`): the paper's §4.2
  class-break -- one exploit, one signature, spreading over a target set
  at a seeded rate until contained;
- **re-emissions**: compromised vehicles keep alerting until patched,
  exercising the correlator's per-vehicle dedup.

The generator honors the ingest pipeline's backpressure signal: while an
event's own ingestion path reports
:meth:`~repro.soc.ingest.IngestPipeline.congested_for`, ASIL-A telemetry
is suppressed *at the source* (counted, not lost silently).  Against a
:class:`~repro.soc.shard.ShardedIngestPipeline` that signal is per
shard, so a single hot partition never mutes telemetry bound for cold
ones.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

try:  # vectorized workload path; the scalar path needs no numpy
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a test dependency
    _np = None

from repro.core.safety import Asil
from repro.ids.base import Alert
from repro.sim import RngStreams, Simulator
from repro.sim.rng import derive_seed
from repro.soc.events import (
    DEFAULT_SOURCE_SEVERITY,
    EventSource,
    SecurityEvent,
    from_ids_alert,
    from_misbehavior_report,
    from_uds_security_failure,
    make_event,
)
from repro.soc.ingest import IngestPipeline
from repro.v2x.misbehavior import MisbehaviorReport


def poisson_draw(rng, lam: float) -> int:
    """Seeded Poisson sample (Knuth for small λ, normal approx beyond)."""
    if lam <= 0:
        return 0
    if lam > 64:
        return max(0, round(rng.gauss(lam, math.sqrt(lam))))
    threshold = math.exp(-lam)
    k, p = 0, 1.0
    while True:
        p *= rng.random()
        if p <= threshold:
            return k
        k += 1


@dataclass
class AttackCampaign:
    """One class-break: a signature spreading over a fixed target set."""

    name: str
    source: EventSource
    start_s: float
    targets: Tuple[str, ...]
    rate_per_s: float                 # expected new compromises / second
    can_id: int = 0x0C9               # IDS campaigns
    detector: str = "spec"
    nrc: int = 0x35                   # DIAG campaigns (invalidKey)
    reason: str = "teleport"          # V2X campaigns

    @property
    def signature(self) -> str:
        """Must equal what the per-source adapter derives."""
        if self.source is EventSource.IDS:
            return f"ids.{self.detector}:{self.can_id:#05x}"
        if self.source is EventSource.DIAG:
            return f"diag.security_access:nrc{self.nrc:#04x}"
        return f"v2x.misbehavior:{self.reason}"

    def emit(self, vehicle_id: str, time: float, seq: int) -> SecurityEvent:
        """Build the vehicle's native alert and normalize it.

        Emission severity is floored at ASIL B: a signature that is part
        of a *successful* compromise is actionable even when its source
        class (e.g. a lone V2X content report) would default lower.
        """
        severity = max(DEFAULT_SOURCE_SEVERITY[self.source], Asil.B)
        if self.source is EventSource.IDS:
            alert = Alert(time, self.detector, self.can_id,
                          f"campaign {self.name}")
            return from_ids_alert(vehicle_id, alert, seq, severity=severity)
        if self.source is EventSource.DIAG:
            return from_uds_security_failure(vehicle_id, time, self.nrc, seq,
                                             severity=severity)
        report = MisbehaviorReport(time, vehicle_id, "ghost", b"\x00",
                                   self.reason)
        return from_misbehavior_report(report, seq, severity=severity)


class FleetModel:
    """Compromise/containment/patch bookkeeping for one fleet.

    ``id_base`` offsets this fleet's vehicle-id space: a federated
    deployment runs one :class:`FleetModel` per region, and disjoint id
    ranges (``id_base=r * 1_000_000``) are what make the hub's
    cross-region distinct-vehicle union mean what it says.  The default
    of 0 keeps a single-region fleet's ids byte-identical to every
    pre-federation run.
    """

    def __init__(self, n_vehicles: int, campaigns: List[AttackCampaign],
                 id_base: int = 0) -> None:
        self.n_vehicles = n_vehicles
        self.id_base = id_base
        self.campaigns = {c.signature: c for c in campaigns}
        self.compromised_at: Dict[str, Dict[str, float]] = {
            sig: {} for sig in self.campaigns
        }
        self._next_target: Dict[str, int] = {sig: 0 for sig in self.campaigns}
        self.contained_at: Dict[str, float] = {}
        self.patched: Dict[str, Set[str]] = {sig: set() for sig in self.campaigns}

    @staticmethod
    def vehicle_id(index: int) -> str:
        return f"v{index:06d}"

    def vid(self, index: int) -> str:
        """This fleet's id for local vehicle ``index`` (``id_base``-offset)."""
        return f"v{self.id_base + index:06d}"

    # ------------------------------------------------------------------
    # Attack dynamics
    # ------------------------------------------------------------------
    def step(self, now: float, dt: float, rng) -> List[Tuple[AttackCampaign, str]]:
        """Advance every uncontained campaign; returns new compromises."""
        newly: List[Tuple[AttackCampaign, str]] = []
        for sig, campaign in self.campaigns.items():
            if now < campaign.start_s or sig in self.contained_at:
                continue
            cursor = self._next_target[sig]
            remaining = len(campaign.targets) - cursor
            if remaining <= 0:
                continue
            count = min(remaining, poisson_draw(rng, campaign.rate_per_s * dt))
            for i in range(count):
                vehicle = campaign.targets[cursor + i]
                self.compromised_at[sig][vehicle] = now
                newly.append((campaign, vehicle))
            self._next_target[sig] = cursor + count
        return newly

    def contain(self, signature: str, now: float) -> int:
        """Stop a campaign's spread; returns vehicles saved from it."""
        if signature not in self.campaigns or signature in self.contained_at:
            return 0
        self.contained_at[signature] = now
        campaign = self.campaigns[signature]
        return len(campaign.targets) - len(self.compromised_at[signature])

    def patch(self, signature: str, vehicles: Set[str]) -> int:
        if signature not in self.patched:
            self.patched[signature] = set()
        before = len(self.patched[signature])
        self.patched[signature] |= vehicles
        return len(self.patched[signature]) - before

    # ------------------------------------------------------------------
    # Outcome metrics (ground truth -- the experiment's scorekeeper)
    # ------------------------------------------------------------------
    def blast_radius(self, signature: str) -> int:
        return len(self.compromised_at.get(signature, {}))

    def blast_averted(self, signature: str) -> int:
        campaign = self.campaigns.get(signature)
        if campaign is None:
            return 0
        return len(campaign.targets) - self.blast_radius(signature)

    def total_compromised(self) -> int:
        return sum(len(v) for v in self.compromised_at.values())

    def total_targets(self) -> int:
        return sum(len(c.targets) for c in self.campaigns.values())

    def attack_signatures(self) -> Set[str]:
        return set(self.campaigns)


#: Fleet size at/above which the generator auto-switches to the numpy
#: vectorized benign path (when numpy is importable).  Below it the
#: scalar path keeps the exact random-draw sequence the pre-vectorized
#: E17 cells published.
VECTORIZE_THRESHOLD = 200_000


class FleetWorkloadGenerator:
    """Drives the fleet on the simulation kernel, feeding the pipeline.

    ``vectorized=None`` auto-selects: numpy batch draws for fleets at or
    above :data:`VECTORIZE_THRESHOLD`, the scalar path otherwise.  The
    vectorized path draws each tick's benign volume -- Poisson count,
    vehicle indices, jitters, signature variants -- as whole numpy arrays
    instead of per-event ``random.Random`` calls (its own deterministic
    PCG64 stream, so scalar cells are untouched), and adds a bulk
    suppression fast path: while every ingest shard is congested, an
    entire tick's ASIL-A noise is counted as source-suppressed without
    ever constructing the events.  That is what makes the 10^6-vehicle
    E17 cell affordable: in overload, exactly the traffic that would be
    thrown away is the traffic never materialized -- and it is still
    *counted*, never silently lost.
    """

    def __init__(
        self,
        sim: Simulator,
        rng: RngStreams,
        fleet: FleetModel,
        pipeline: IngestPipeline,
        benign_rate_eps: float = 0.004,   # per vehicle per second, ASIL A
        ambient_rate_eps: float = 0.0001,  # per vehicle per second, ASIL B
        reemit_rate_eps: float = 0.25,    # per compromised, unpatched vehicle
        tick_s: float = 0.5,
        vectorized: Optional[bool] = None,
    ) -> None:
        self.sim = sim
        self.fleet = fleet
        self.pipeline = pipeline
        self.benign_rate_eps = benign_rate_eps
        self.ambient_rate_eps = ambient_rate_eps
        self.reemit_rate_eps = reemit_rate_eps
        self.tick_s = tick_s
        # Shared "ambient" signatures: benign-but-actionable patterns that
        # recur fleet-wide (a flaky infotainment build tripping its own
        # IDS, garage RF noise).  The pool grows with the fleet -- more
        # vehicle variants, more distinct flaky patterns -- which keeps
        # the per-signature rate (the correlator's false-positive bait)
        # roughly constant across fleet scales.
        self.ambient_pool = max(32, fleet.n_vehicles // 10)
        self._benign_rng = rng.get("soc.benign")
        self._attack_rng = rng.get("soc.attack")
        if vectorized is None:
            vectorized = _np is not None and fleet.n_vehicles >= VECTORIZE_THRESHOLD
        if vectorized and _np is None:
            raise RuntimeError("vectorized workload generation requires numpy")
        self.vectorized = vectorized
        self._np_rng = (
            _np.random.Generator(_np.random.PCG64(
                derive_seed(rng.master_seed, "soc.benign.np")))
            if vectorized else None
        )
        self._seq = 0
        self.emitted = 0
        self.suppressed_at_source = 0

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def start(self) -> None:
        self.sim.schedule(self.tick_s, self._tick)

    # ------------------------------------------------------------------
    def _offer(self, event: SecurityEvent) -> None:
        # Per-shard backpressure: only throttle telemetry whose own
        # ingestion path is hot (a plain pipeline has exactly one path).
        if event.severity <= Asil.A and self.pipeline.congested_for(event):
            self.suppressed_at_source += 1
            return
        self.emitted += 1
        self.pipeline.offer(self.sim.now, event)

    def _tick(self) -> None:
        now = self.sim.now
        if self.vectorized:
            self._benign_traffic_vectorized(now)
        else:
            self._benign_traffic(now)
        self._attack_traffic(now)
        self.sim.schedule(self.tick_s, self._tick)

    def _benign_traffic_vectorized(self, now: float) -> None:
        """Numpy batch form of :meth:`_benign_traffic`.

        Same traffic model, different RNG stream: counts are exact
        Poisson draws (no normal approximation), and per-event attributes
        come from array draws.  While the pipeline is fully congested the
        ASIL-A block is suppressed in bulk -- counted, not constructed.
        """
        rng = self._np_rng
        n = self.fleet.n_vehicles
        # Per-vehicle one-off noise (ASIL A): volume, never correlates.
        k = int(rng.poisson(n * self.benign_rate_eps * self.tick_s))
        if k and self.pipeline.fully_congested:
            self.suppressed_at_source += k
        elif k:
            vehicles = rng.integers(0, n, size=k)
            jitters = rng.uniform(-self.tick_s, 0.0, size=k)
            variants = rng.integers(0, 4, size=k)
            for index, jitter, variant in zip(vehicles, jitters, variants):
                vehicle = self.fleet.vid(int(index))
                self._offer(make_event(
                    vehicle, EventSource.V2X,
                    f"noise.{vehicle}:{int(variant)}",
                    max(0.0, now + float(jitter)),
                    self._next_seq(), severity=Asil.A,
                ))
        # Shared ambient patterns (ASIL B): actionable-looking, so they
        # reach the correlator -- never bulk-suppressed.
        k = int(rng.poisson(n * self.ambient_rate_eps * self.tick_s))
        if k:
            vehicles = rng.integers(0, n, size=k)
            jitters = rng.uniform(-self.tick_s, 0.0, size=k)
            patterns = rng.integers(0, self.ambient_pool, size=k)
            for index, jitter, pattern in zip(vehicles, jitters, patterns):
                self._offer(make_event(
                    self.fleet.vid(int(index)), EventSource.GATEWAY,
                    f"ambient.telemetry:{int(pattern):04d}",
                    max(0.0, now + float(jitter)),
                    self._next_seq(), severity=Asil.B,
                ))

    def _benign_traffic(self, now: float) -> None:
        rng = self._benign_rng
        n = self.fleet.n_vehicles
        # Per-vehicle one-off noise (ASIL A): volume, never correlates.
        lam = n * self.benign_rate_eps * self.tick_s
        for _ in range(poisson_draw(rng, lam)):
            vehicle = self.fleet.vid(rng.randrange(n))
            jitter = rng.uniform(-self.tick_s, 0.0)
            sig = f"noise.{vehicle}:{rng.randrange(4)}"
            self._offer(make_event(
                vehicle, EventSource.V2X, sig, max(0.0, now + jitter),
                self._next_seq(), severity=Asil.A,
            ))
        # Shared ambient patterns (ASIL B): actionable-looking, so they
        # reach the correlator -- the precision measurement's denominator.
        lam = n * self.ambient_rate_eps * self.tick_s
        for _ in range(poisson_draw(rng, lam)):
            vehicle = self.fleet.vid(rng.randrange(n))
            jitter = rng.uniform(-self.tick_s, 0.0)
            sig = f"ambient.telemetry:{rng.randrange(self.ambient_pool):04d}"
            self._offer(make_event(
                vehicle, EventSource.GATEWAY, sig, max(0.0, now + jitter),
                self._next_seq(), severity=Asil.B,
            ))

    def _attack_traffic(self, now: float) -> None:
        rng = self._attack_rng
        # Fresh compromises: a detection burst from the victim itself.
        for campaign, vehicle in self.fleet.step(now, self.tick_s, rng):
            self._offer(campaign.emit(vehicle, now, self._next_seq()))
        # Re-emissions from still-compromised, unpatched vehicles.
        for sig, campaign in self.fleet.campaigns.items():
            victims = [
                v for v in self.fleet.compromised_at[sig]
                if v not in self.fleet.patched[sig]
            ]
            if not victims:
                continue
            lam = len(victims) * self.reemit_rate_eps * self.tick_s
            for _ in range(poisson_draw(rng, lam)):
                vehicle = victims[rng.randrange(len(victims))]
                self._offer(campaign.emit(vehicle, now, self._next_seq()))


def seeded_campaigns(
    rng: RngStreams,
    n_vehicles: int,
    prevalence: float,
    k_floor: int = 5,
    n_campaigns: int = 3,
    start_s: float = 4.0,
    spread_duration_s: float = 15.0,
    id_base: int = 0,
) -> List[AttackCampaign]:
    """Deterministically plant ``n_campaigns`` class-breaks.

    Target counts honor ``prevalence`` but never drop below ``k_floor``
    per campaign (a campaign that cannot reach the correlator's k would
    make recall unmeasurable at toy fleet sizes).  ``id_base`` matches
    the owning :class:`FleetModel`'s offset so campaign targets land in
    that region's id space.
    """
    picker = rng.get("soc.campaigns")
    per = max(k_floor, int(prevalence * n_vehicles / n_campaigns))
    per = min(per, max(1, n_vehicles // n_campaigns))
    kinds = [
        (EventSource.IDS, {"can_id": 0x0C9, "detector": "spec"}),
        (EventSource.DIAG, {"nrc": 0x35}),
        (EventSource.V2X, {"reason": "teleport"}),
        (EventSource.IDS, {"can_id": 0x244, "detector": "frequency"}),
    ]
    campaigns: List[AttackCampaign] = []
    # random.sample indexes the population, so a lazy range draws the
    # exact same vehicles as a materialized list -- and a 10^7-vehicle
    # fleet never allocates 10^7 int objects just to pick a few hundred.
    pool = range(n_vehicles)
    for i in range(n_campaigns):
        source, extra = kinds[i % len(kinds)]
        indices = picker.sample(pool, per)
        campaigns.append(AttackCampaign(
            name=f"campaign-{i}",
            source=source,
            start_s=start_s + 2.0 * i,
            targets=tuple(FleetModel.vehicle_id(id_base + j) for j in indices),
            rate_per_s=max(0.5, per / spread_duration_s),
            **extra,
        ))
    return campaigns
