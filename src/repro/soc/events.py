"""Normalized fleet security telemetry: the VSOC event model.

Every in-vehicle security mechanism in this repository produces its own
alert shape -- :class:`repro.ids.base.Alert`, V2X
:class:`~repro.v2x.misbehavior.MisbehaviorReport`, gateway trace records,
UDS SecurityAccess negative responses.  A fleet backend cannot correlate
across vehicles (let alone across sources) until those are normalized
into one schema; this module is that schema plus the per-source
constructors.

``SecurityEvent`` is frozen and hashable; ``event_id`` is derived
deterministically from (vehicle, source, signature, time, sequence) so a
re-run of the same seeded simulation produces byte-identical ids -- the
property the dedup/correlation tests and the E17 determinism guarantee
rest on.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Mapping, Optional, Tuple

from repro.core.safety import Asil


class EventSource(Enum):
    """Which on-vehicle mechanism produced the telemetry."""

    IDS = "ids"
    V2X = "v2x"
    GATEWAY = "gateway"
    DIAG = "diag"


#: Default severity per source, derived from the DEFAULT_HAZARDS each
#: mechanism guards (see repro.core.safety): an IDS alert on a safety bus
#: implies a can-spoof hazard (ASIL D), a gateway quarantine implies a
#: silenced domain (ASIL C), a diagnostics break-in can stage malicious
#: firmware (ASIL B), and V2X content lies are driver-controllable (floor
#: at ASIL A -- security events are never QM).
DEFAULT_SOURCE_SEVERITY: Mapping[EventSource, Asil] = {
    EventSource.IDS: Asil.D,
    EventSource.GATEWAY: Asil.C,
    EventSource.DIAG: Asil.B,
    EventSource.V2X: Asil.A,
}


#: Signature namespace -> originating source.  Every adapter below (and
#: the workload generator's ambient/noise signatures) prefixes its
#: correlation key with the producing mechanism, so a fleet-wide verdict
#: that no longer carries a triggering event (e.g. a merged cross-shard
#: detection) can still recover the source family for severity scoring.
_SIGNATURE_SOURCE_PREFIXES: Tuple[Tuple[str, "EventSource"], ...] = (
    ("ids.", EventSource.IDS),
    ("v2x.", EventSource.V2X),
    ("diag.", EventSource.DIAG),
    ("gateway.", EventSource.GATEWAY),
    ("ambient.", EventSource.GATEWAY),   # shared fleet telemetry patterns
    ("noise.", EventSource.V2X),         # per-vehicle one-off noise
)


def source_for_signature(signature: str) -> Optional["EventSource"]:
    """Recover the producing :class:`EventSource` from a signature's
    namespace prefix; ``None`` for unknown namespaces (callers fall back
    to the most conservative severity)."""
    for prefix, source in _SIGNATURE_SOURCE_PREFIXES:
        if signature.startswith(prefix):
            return source
    return None


def make_event_id(vehicle_id: str, source: "EventSource", signature: str,
                  time: float, seq: int) -> str:
    """Deterministic 16-hex-char event id."""
    material = f"{vehicle_id}|{source.value}|{signature}|{time:.9f}|{seq}"
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class SecurityEvent:
    """One normalized telemetry record as the VSOC ingests it.

    ``signature`` is the cross-fleet correlation key: two vehicles hit by
    the same attack tooling report the same signature (the paper's §4.2
    class-break made observable).  ``detail`` is a frozen tuple of
    key/value pairs so events stay hashable.
    """

    event_id: str
    time: float
    vehicle_id: str
    source: EventSource
    signature: str
    severity: Asil = Asil.A
    detail: Tuple[Tuple[str, Any], ...] = field(default_factory=tuple)

    def detail_dict(self) -> dict:
        return dict(self.detail)

    @property
    def is_actionable(self) -> bool:
        """QM telemetry is observability noise, never incident input."""
        return self.severity > Asil.QM


def _freeze(detail: Optional[Mapping[str, Any]]) -> Tuple[Tuple[str, Any], ...]:
    if not detail:
        return ()
    return tuple(sorted(detail.items()))


def make_event(
    vehicle_id: str,
    source: EventSource,
    signature: str,
    time: float,
    seq: int,
    severity: Optional[Asil] = None,
    detail: Optional[Mapping[str, Any]] = None,
) -> SecurityEvent:
    """General constructor; severity defaults per source."""
    if severity is None:
        severity = DEFAULT_SOURCE_SEVERITY[source]
    return SecurityEvent(
        event_id=make_event_id(vehicle_id, source, signature, time, seq),
        time=time,
        vehicle_id=vehicle_id,
        source=source,
        signature=signature,
        severity=severity,
        detail=_freeze(detail),
    )


# ----------------------------------------------------------------------
# Per-source adapters.  Each takes the mechanism's native alert object and
# a monotonically increasing per-vehicle sequence number (duplicate
# suppression is the correlator's job; the adapters only normalize).
# ----------------------------------------------------------------------

def from_ids_alert(vehicle_id: str, alert: Any, seq: int,
                   severity: Optional[Asil] = None) -> SecurityEvent:
    """Normalize a :class:`repro.ids.base.Alert`.

    The signature folds in the detector family and the CAN id under
    attack -- the pair that recurs fleet-wide when one exploit is replayed
    against a vehicle class.
    """
    signature = f"ids.{alert.detector}:{alert.can_id:#05x}"
    return make_event(
        vehicle_id, EventSource.IDS, signature, alert.time, seq,
        severity=severity,
        detail={"reason": alert.reason, "score": alert.score},
    )


def from_misbehavior_report(report: Any, seq: int,
                            severity: Optional[Asil] = None) -> SecurityEvent:
    """Normalize a V2X :class:`~repro.v2x.misbehavior.MisbehaviorReport`.

    The *reporter* is the telemetry source vehicle; the accused pseudonym
    travels in the detail payload (the SOC, unlike the road-side
    authority, correlates on the misbehavior class, not the pseudonym).
    """
    category = report.reason.split(":", 1)[0].split(",", 1)[0].strip()
    signature = f"v2x.misbehavior:{category}"
    return make_event(
        report.reporter, EventSource.V2X, signature, report.time, seq,
        severity=severity,
        detail={"accused": report.accused_subject, "reason": report.reason},
    )


def from_gateway_record(vehicle_id: str, record: Any, seq: int,
                        severity: Optional[Asil] = None) -> SecurityEvent:
    """Normalize a gateway trace record (``gateway.quarantine`` /
    ``gateway.drop``) emitted by :class:`repro.gateway.SecureGateway`."""
    domain = record.data.get("domain", "?")
    signature = f"{record.kind}:{domain}"
    return make_event(
        vehicle_id, EventSource.GATEWAY, signature, record.time, seq,
        severity=severity,
        detail=dict(record.data),
    )


def from_uds_security_failure(vehicle_id: str, time: float, nrc: int,
                              seq: int, target_ecu: str = "?",
                              severity: Optional[Asil] = None) -> SecurityEvent:
    """Normalize a UDS SecurityAccess failure (0x27 invalidKey / lockout).

    Repeated invalid-key responses across many vehicles are the classic
    footprint of a leaked-then-patched seed/key algorithm being brute
    tried fleet-wide (E15's attack chain at scale).
    """
    signature = f"diag.security_access:nrc{nrc:#04x}"
    return make_event(
        vehicle_id, EventSource.DIAG, signature, time, seq,
        severity=severity,
        detail={"nrc": nrc, "target_ecu": target_ecu},
    )
