"""Durable VSOC storage: a segmented append-only event log + snapshots.

The paper's extensibility argument (§5) is that fleet security
infrastructure outlives any one process: a SOC backend that loses its
correlator state and incident history on restart cannot honor a 15+ year
vehicle life.  This module is the persistence substrate ROADMAP names as
the step after the 10^7-vehicle scale-out:

- :class:`EventLog` -- a segmented append-only on-disk log of every
  *dispatched* event (the archival tap rides the same batch sinks the
  correlators consume, so the log records exactly what the analytics
  saw, in the order they saw it) plus per-pump **markers** that let a
  replay reproduce the live pump/merge cadence exactly;
- :class:`SnapshotStore` -- CRC-guarded, atomically-written JSON
  snapshots of the analytic state (correlator windows + ledgers,
  merger, incident tracker) with bounded retention;
- :class:`DurableStore` -- the two side by side under one root.

Recovery contract (differential-tested byte-identical in
``tests/test_soc_store.py``): load the latest valid snapshot, replay the
log suffix after the snapshot's ``log_seq`` through ``observe_batch``,
re-running the campaign merge at every pump marker.  The recovered
correlator/merger/tracker state equals an uninterrupted run's state at
the kill point, at 1 and N shards.

On-disk record format (one segment file = ``SOCLOG1\\n`` magic + records)::

    ┌──────────┬──────────────┬───────────────────┐
    │ u32 len  │ u32 CRC32    │ payload (len bytes)│   little-endian
    └──────────┴──────────────┴───────────────────┘

The payload is canonical JSON: ``["b", dispatch_t, shard, [event, ...]]``
for one archived *dispatched batch* (one record per batch-sink call, so
replay sees exactly the batch boundaries the live correlators saw --
batched incident attribution is batch-boundary-sensitive), and
``["m", pump_t, pump_no]`` for a pump marker.  A
**torn write** (process killed mid-append) leaves a short or
CRC-mismatching tail; opening the log truncates the tail segment back to
its last whole record -- earlier records are never touched, and a CRC
failure *before* the tail raises :class:`CorruptRecord` instead of
guessing.

Forensics: :meth:`EventLog.scan` answers
``scan(signature=, vehicle_id=, t0=, t1=)`` without replaying the whole
log.  Closed segments carry a sidecar **sparse time index**: the
event-time min/max (whole-segment skip) plus every ``index_every``-th
record's ``(offset, index, watermark)`` checkpoint, where ``watermark``
is the running max event time.  Records before a checkpoint all have
``time <= watermark``, so the scan seeks to the last checkpoint with
``watermark < t0``; with a declared disorder bound (the correlator's
``max_lateness_s``), it also stops early once the watermark passes
``t1 + max_disorder_s``.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.safety import Asil
from repro.soc.events import EventSource, SecurityEvent

_MAGIC = b"SOCLOG1\n"
_HEADER = struct.Struct("<II")  # record length, CRC32 of the payload

#: When to fsync the active segment: ``never`` (OS buffering only),
#: ``rotate`` (at segment close and explicit :meth:`EventLog.sync` --
#: the default; a snapshot always syncs first), ``always`` (after every
#: append call -- the paranoid setting the fsync microbench prices).
FSYNC_POLICIES = ("never", "rotate", "always")


class CorruptRecord(RuntimeError):
    """A record *before* the recoverable tail failed CRC/framing."""


# ----------------------------------------------------------------------
# Event codec: canonical JSON, byte-identical round trip
# ----------------------------------------------------------------------

def _event_obj(event: SecurityEvent) -> list:
    return [
        event.event_id,
        event.time,
        event.vehicle_id,
        event.source.value,
        event.signature,
        int(event.severity),
        [[k, v] for k, v in event.detail],
    ]


def _event_from_obj(obj: Sequence) -> SecurityEvent:
    eid, t, vid, src, sig, sev, detail = obj
    return SecurityEvent(
        event_id=eid,
        time=float(t),
        vehicle_id=vid,
        source=EventSource(src),
        signature=sig,
        severity=Asil(sev),
        detail=tuple((k, v) for k, v in detail),
    )


def _dumps(obj) -> bytes:
    # Compact separators + repr-based floats: Python floats round-trip
    # exactly through json, so re-encoding a decoded event reproduces
    # the original bytes.  NaN times are rejected (they would break the
    # watermark ordering the sparse index relies on).
    return json.dumps(obj, separators=(",", ":"), ensure_ascii=False,
                      allow_nan=False).encode("utf-8")


def encode_event(event: SecurityEvent) -> bytes:
    """Canonical wire form of one event.  ``detail`` values must be JSON
    scalars (everything the adapters in :mod:`repro.soc.events` emit)."""
    return _dumps(_event_obj(event))


def decode_event(data: bytes) -> SecurityEvent:
    """Inverse of :func:`encode_event` (hypothesis-tested byte-identical:
    ``encode(decode(b)) == b`` and ``decode(encode(e)) == e``)."""
    return _event_from_obj(json.loads(data.decode("utf-8")))


@dataclass(frozen=True)
class LogRecord:
    """One replayed log entry: an archived batch or a pump marker."""

    seq: int                 # global 1-based record sequence number
    kind: str                # "batch" | "mark"
    dispatch_t: float        # sim time of the dispatching pump
    shard: int = 0           # ingest shard the batch drained from
    events: Tuple[SecurityEvent, ...] = ()
    pump_no: int = -1        # markers: the pump's ordinal


@dataclass(frozen=True)
class ScanHit:
    """One event matched by a forensics :meth:`EventLog.scan`."""

    seq: int                 # sequence number of the containing batch
    dispatch_t: float
    shard: int
    event: SecurityEvent


def _record_from_payload(seq: int, payload: bytes) -> LogRecord:
    obj = json.loads(payload.decode("utf-8"))
    if obj[0] == "b":
        return LogRecord(seq=seq, kind="batch", dispatch_t=float(obj[1]),
                         shard=int(obj[2]),
                         events=tuple(_event_from_obj(e) for e in obj[3]))
    if obj[0] == "m":
        return LogRecord(seq=seq, kind="mark", dispatch_t=float(obj[1]),
                         pump_no=int(obj[2]))
    raise CorruptRecord(f"unknown record tag {obj[0]!r} at seq {seq}")


def record_payload(record: LogRecord) -> bytes:
    """Canonical wire payload of one :class:`LogRecord` (the inverse of
    :func:`_record_from_payload`): re-encoding a decoded record
    reproduces the on-disk payload bytes exactly, so a shipped record is
    byte-identical to the one the region archived."""
    if record.kind == "batch":
        return _dumps(["b", record.dispatch_t, record.shard,
                       [_event_obj(e) for e in record.events]])
    if record.kind == "mark":
        return _dumps(["m", record.dispatch_t, record.pump_no])
    raise ValueError(f"unknown record kind {record.kind!r}")


#: Public aliases for the canonical codec building blocks, reused by the
#: network wire protocol (:mod:`repro.soc.service`): wire frames carry
#: the same ``u32len|CRC32`` envelope and the same canonical-JSON event
#: objects as log records, so wire bytes, log bytes, and shipment bytes
#: all share one self-verifying codec (and one test harness).
canonical_dumps = _dumps
event_to_obj = _event_obj
event_from_obj = _event_from_obj


def frame_payload(payload: bytes) -> bytes:
    """Frame one payload with the log's record codec (``u32 len | u32
    CRC32 | payload``) -- the same self-verifying envelope segments use
    on disk, reused by the federation shippers on the wire."""
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def unframe_payload(data: bytes) -> bytes:
    """Inverse of :func:`frame_payload`: verify framing + CRC, return
    the payload.  Raises :class:`CorruptRecord` on any damage -- a
    corrupted shipment is rejected whole, never half-applied."""
    if len(data) < _HEADER.size:
        raise CorruptRecord("short frame header")
    length, crc = _HEADER.unpack(data[:_HEADER.size])
    payload = data[_HEADER.size:]
    if len(payload) != length or zlib.crc32(payload) != crc:
        raise CorruptRecord("frame failed length/CRC check")
    return payload


# ----------------------------------------------------------------------
# Segment plumbing
# ----------------------------------------------------------------------

@dataclass
class _SegmentInfo:
    """Scan metadata for one segment (sidecar for closed, live for active)."""

    path: Path
    first_seq: int
    count: int
    min_t: Optional[float]          # event-time range (events only)
    max_t: Optional[float]
    # [offset, record_index, watermark]: every record before ``offset``
    # (the first ``record_index`` records) has event time <= watermark.
    checkpoints: List[List[float]]


def _segment_first_seq(path: Path) -> int:
    return int(path.stem.split("-")[1])


def _iter_payloads(path: Path, start_offset: int = len(_MAGIC),
                   stop_offset: Optional[int] = None,
                   ) -> Iterator[Tuple[int, bytes]]:
    """Yield ``(offset, payload)`` for whole, CRC-valid records.  Raises
    :class:`CorruptRecord` on a framing/CRC failure (callers that expect
    a recoverable torn tail use :func:`_scan_valid_prefix` instead)."""
    with open(path, "rb") as fh:
        fh.seek(start_offset)
        offset = start_offset
        while stop_offset is None or offset < stop_offset:
            header = fh.read(_HEADER.size)
            if not header:
                return
            if len(header) < _HEADER.size:
                raise CorruptRecord(f"{path.name}: short header at {offset}")
            length, crc = _HEADER.unpack(header)
            payload = fh.read(length)
            if len(payload) < length or zlib.crc32(payload) != crc:
                raise CorruptRecord(f"{path.name}: bad record at {offset}")
            yield offset, payload
            offset += _HEADER.size + length


def _scan_valid_prefix(path: Path) -> Tuple[List[bytes], int]:
    """Read a segment tolerating a torn tail: returns every whole valid
    record plus the byte offset where validity ends (the truncate point)."""
    payloads: List[bytes] = []
    good_end = len(_MAGIC)
    with open(path, "rb") as fh:
        magic = fh.read(len(_MAGIC))
        if magic != _MAGIC:
            return [], len(_MAGIC)
        while True:
            header = fh.read(_HEADER.size)
            if len(header) < _HEADER.size:
                break
            length, crc = _HEADER.unpack(header)
            payload = fh.read(length)
            if len(payload) < length or zlib.crc32(payload) != crc:
                break
            payloads.append(payload)
            good_end += _HEADER.size + length
    return payloads, good_end


class EventLog:
    """Segmented append-only log with CRC-framed records.

    ``segment_max_records`` bounds segment size (rotation closes the
    active segment, writes its sidecar index, fsyncs per policy, and
    opens the next); ``index_every`` sets the sparse-index granularity;
    ``fsync`` is one of :data:`FSYNC_POLICIES`.

    Opening an existing root re-enters the log: closed segments are
    trusted (their records re-verify by CRC on every read), the tail
    segment is scanned and truncated back to its last whole record
    (``truncated_bytes`` reports how much of a torn write was dropped).
    """

    def __init__(self, root, *, segment_max_records: int = 4096,
                 index_every: int = 64, fsync: str = "rotate") -> None:
        if segment_max_records < 1:
            raise ValueError("segment_max_records must be >= 1")
        if index_every < 1:
            raise ValueError("index_every must be >= 1")
        if fsync not in FSYNC_POLICIES:
            raise ValueError(f"fsync must be one of {FSYNC_POLICIES}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.segment_max_records = segment_max_records
        self.index_every = index_every
        self.fsync = fsync

        self._fh = None
        self._first_seq = 1          # first seq of the active segment
        self._count = 0              # records in the active segment
        self._offset = len(_MAGIC)   # append position in the active segment
        self._checkpoints: List[List[float]] = []
        self._min_t: Optional[float] = None
        self._max_t: Optional[float] = None
        self._watermark: Optional[float] = None  # running max event time

        self.last_seq = 0
        self.appended = 0            # records appended by *this* process
        self.truncated_bytes = 0     # torn tail dropped at open
        self.segments_rotated = 0
        self.last_scan_stats: Dict[str, int] = {}
        self.last_tail_stats: Dict[str, int] = {}

        self._recover_or_create()

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def _segment_path(self, first_seq: int) -> Path:
        return self.root / f"seg-{first_seq:010d}.log"

    @staticmethod
    def _index_path(segment: Path) -> Path:
        return segment.with_suffix(".idx.json")

    def segment_paths(self) -> List[Path]:
        return sorted(self.root.glob("seg-*.log"))

    # ------------------------------------------------------------------
    # Open / recover
    # ------------------------------------------------------------------
    def _recover_or_create(self) -> None:
        segments = self.segment_paths()
        if not segments:
            self._open_segment(first_seq=1)
            return
        tail = segments[-1]
        size = tail.stat().st_size
        with open(tail, "rb") as fh:
            magic_ok = fh.read(len(_MAGIC)) == _MAGIC
        if not magic_ok:
            # Torn during segment creation: nothing recoverable in it.
            with open(tail, "wb") as fh:
                fh.write(_MAGIC)
            self.truncated_bytes = size
            payloads = []
        else:
            payloads, good_end = _scan_valid_prefix(tail)
            if good_end < size:
                with open(tail, "r+b") as fh:
                    fh.truncate(good_end)
                self.truncated_bytes = size - good_end
        # Rebuild the active segment's in-memory index state.
        self._first_seq = _segment_first_seq(tail)
        self._count = 0
        self._offset = len(_MAGIC)
        self._checkpoints = []
        self._min_t = self._max_t = self._watermark = None
        for payload in payloads:
            self._note_record(payload)
        self.last_seq = self._first_seq + len(payloads) - 1
        self._fh = open(tail, "ab")

    def _open_segment(self, first_seq: int) -> None:
        self._first_seq = first_seq
        self._count = 0
        self._offset = len(_MAGIC)
        self._checkpoints = []
        self._min_t = self._max_t = self._watermark = None
        self._fh = open(self._segment_path(first_seq), "wb")
        self._fh.write(_MAGIC)

    # ------------------------------------------------------------------
    # Append path
    # ------------------------------------------------------------------
    def _note_times(self, times: Sequence[float]) -> None:
        for t in times:
            if self._min_t is None or t < self._min_t:
                self._min_t = t
            if self._max_t is None or t > self._max_t:
                self._max_t = t
            if self._watermark is None or t > self._watermark:
                self._watermark = t

    def _note_record(self, payload: bytes) -> None:
        """Advance the active segment's index state for one record."""
        if self._count % self.index_every == 0:
            self._checkpoints.append(
                [self._offset, self._count,
                 self._watermark if self._watermark is not None else None])
        obj = json.loads(payload.decode("utf-8"))
        if obj[0] == "b":
            self._note_times([float(e[1]) for e in obj[3]])
        self._offset += _HEADER.size + len(payload)
        self._count += 1

    def _append_payload(self, payload: bytes,
                        event_times: Sequence[float]) -> int:
        if self._count >= self.segment_max_records:
            self.rotate()
        if self._count % self.index_every == 0:
            self._checkpoints.append(
                [self._offset, self._count,
                 self._watermark if self._watermark is not None else None])
        self._fh.write(_HEADER.pack(len(payload), zlib.crc32(payload)))
        self._fh.write(payload)
        self._offset += _HEADER.size + len(payload)
        self._count += 1
        self.last_seq += 1
        self.appended += 1
        self._note_times(event_times)
        return self.last_seq

    def _policy_sync(self) -> None:
        if self.fsync == "always":
            self._fh.flush()
            os.fsync(self._fh.fileno())

    def append(self, dispatch_t: float, shard: int,
               event: SecurityEvent) -> int:
        """Archive one event as a singleton batch; returns its seq."""
        return self.append_batch(dispatch_t, shard, [event])

    def append_batch(self, dispatch_t: float, shard: int,
                     events: Sequence[SecurityEvent]) -> int:
        """Archive one drained batch as one record (the batch-sink tap
        calls this once per dispatch batch, which is what preserves the
        batch boundaries replay needs); returns its sequence number."""
        seq = self._append_payload(
            _dumps(["b", dispatch_t, shard,
                    [_event_obj(e) for e in events]]),
            [e.time for e in events])
        self._policy_sync()
        return seq

    def append_columnar(self, dispatch_t: float, shard: int,
                        batch: "ColumnarBatch") -> int:
        """Archive one columnar batch.  Serializes from the batch's
        retained ``events`` list through the exact same record codec as
        :meth:`append_batch`, so a log written by a columnar-mode center
        is byte-identical to one written by the per-event/batched path --
        replay and forensics never need to know which mode produced it.
        """
        return self.append_batch(dispatch_t, shard, batch.events)

    def append_mark(self, t: float, pump_no: int) -> int:
        """Append a pump marker: replay re-runs the campaign merge here."""
        seq = self._append_payload(_dumps(["m", t, pump_no]), ())
        self._policy_sync()
        return seq

    def rotate(self) -> None:
        """Close the active segment (sidecar index + fsync per policy)
        and open the next.  No-op on an empty segment."""
        if self._count == 0:
            return
        self._fh.flush()
        if self.fsync != "never":
            os.fsync(self._fh.fileno())
        self._fh.close()
        self._write_sidecar()
        self.segments_rotated += 1
        self._open_segment(self.last_seq + 1)

    def _write_sidecar(self) -> None:
        index = {
            "first_seq": self._first_seq,
            "count": self._count,
            "min_t": self._min_t,
            "max_t": self._max_t,
            "checkpoints": self._checkpoints,
        }
        path = self._index_path(self._segment_path(self._first_seq))
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(index, sort_keys=True))
        os.replace(tmp, path)

    def sync(self) -> None:
        """Flush and (unless ``fsync='never'``) fsync the active segment.
        Called before every snapshot so a snapshot never references log
        records less durable than itself."""
        self._fh.flush()
        if self.fsync != "never":
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None and not self._fh.closed:
            self.sync()
            self._fh.close()

    def truncate_after_last_mark(self) -> Dict[str, int]:
        """Physically drop every record after the last pump marker.

        The service-restart entry point: a worker killed mid-handoff may
        have archived part of the handoff's batch records without
        reaching the pump marker that seals them.  Replaying those would
        double-admit the handoff when the frontend resubmits it, and the
        re-appended copies would duplicate bytes versus an uninterrupted
        twin log.  Truncating back to the last marker makes the
        resubmitted handoff re-archive the exact same bytes, which is
        what keeps the auto-restart differential byte-identical.

        Trailing segments that contain no marker at all are deleted
        outright (with their sidecar indexes); the sidecar of a
        truncated closed segment is dropped too -- it is rebuilt when
        the segment next rotates.  If the log holds no marker anywhere,
        everything is dropped and the log restarts empty at seq 0.
        Returns ``{"records_dropped", "bytes_dropped",
        "segments_deleted"}``.
        """
        self.close()
        stats = {"records_dropped": 0, "bytes_dropped": 0,
                 "segments_deleted": 0}
        for path in reversed(self.segment_paths()):
            size = path.stat().st_size
            payloads, _ = _scan_valid_prefix(path)
            keep_end = len(_MAGIC)
            keep_records = 0
            offset = len(_MAGIC)
            for i, payload in enumerate(payloads):
                offset += _HEADER.size + len(payload)
                if payload.startswith(b'["m"'):
                    keep_end = offset
                    keep_records = i + 1
            if keep_records == 0:
                # No marker anywhere in this segment: nothing survives.
                stats["records_dropped"] += len(payloads)
                stats["bytes_dropped"] += max(0, size - len(_MAGIC))
                stats["segments_deleted"] += 1
                self._index_path(path).unlink(missing_ok=True)
                path.unlink()
                continue
            if keep_end < size:
                stats["records_dropped"] += len(payloads) - keep_records
                stats["bytes_dropped"] += size - keep_end
                with open(path, "r+b") as fh:
                    fh.truncate(keep_end)
                # The sidecar (if this was a closed segment) now lies
                # about the record count; the segment becomes the active
                # tail and re-earns one at its next rotation.
                self._index_path(path).unlink(missing_ok=True)
            break
        self.last_seq = 0  # recomputed from the surviving tail (if any)
        self._recover_or_create()
        return stats

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def _segment_infos(self) -> List[_SegmentInfo]:
        infos: List[_SegmentInfo] = []
        for path in self.segment_paths():
            first_seq = _segment_first_seq(path)
            if first_seq == self._first_seq:
                infos.append(_SegmentInfo(
                    path, first_seq, self._count, self._min_t, self._max_t,
                    list(self._checkpoints)))
                continue
            idx_path = self._index_path(path)
            if idx_path.exists():
                idx = json.loads(idx_path.read_text())
                infos.append(_SegmentInfo(
                    path, idx["first_seq"], idx["count"],
                    idx["min_t"], idx["max_t"], idx["checkpoints"]))
            else:  # sidecar lost: fall back to an unindexed full scan
                count = sum(1 for _ in _iter_payloads(path))
                infos.append(_SegmentInfo(path, first_seq, count,
                                          None, None, []))
        return infos

    def replay(self, after_seq: int = 0) -> Iterator[LogRecord]:
        """Yield every record with ``seq > after_seq`` in append order
        (batches *and* pump markers -- recovery replays both)."""
        self._fh.flush()  # the active segment must be readable
        for info in self._segment_infos():
            if info.first_seq + info.count - 1 <= after_seq:
                continue
            for i, (_, payload) in enumerate(_iter_payloads(info.path)):
                seq = info.first_seq + i
                if seq <= after_seq:
                    continue
                yield _record_from_payload(seq, payload)

    def tail(self, after_seq: int = 0) -> Iterator[LogRecord]:
        """Yield every record with ``seq > after_seq`` like
        :meth:`replay`, but *seek* instead of rescan: segments wholly at
        or before ``after_seq`` are skipped by their sidecar metadata,
        and within the first overlapping segment the sparse index jumps
        to the last checkpoint at or before the resume point.  This is
        the shipper's read path -- called once per pump with a
        monotonically advancing cursor, it reads O(new records +
        ``index_every``) instead of O(segment size).

        ``last_tail_stats`` records ``segments_skipped``,
        ``records_read`` (records decoded, including up to
        ``index_every - 1`` pre-cursor records after the checkpoint
        seek), ``records_yielded``, and ``bytes_seeked`` (bytes the
        checkpoint seek avoided reading) for the regression pin.
        """
        self._fh.flush()  # the active segment must be readable
        stats = {"segments_skipped": 0, "records_read": 0,
                 "records_yielded": 0, "bytes_seeked": 0}
        self.last_tail_stats = stats
        for info in self._segment_infos():
            if info.first_seq + info.count - 1 <= after_seq:
                stats["segments_skipped"] += 1
                continue
            start_offset, start_index = len(_MAGIC), 0
            # Records are seq-contiguous, so checkpoint ``record_index``
            # maps directly to seq: seek to the last checkpoint whose
            # first record is still <= the resume point.
            for offset, index, _watermark in info.checkpoints:
                if info.first_seq + int(index) <= after_seq + 1:
                    start_offset, start_index = int(offset), int(index)
                else:
                    break
            stats["bytes_seeked"] += start_offset - len(_MAGIC)
            for i, (_, payload) in enumerate(_iter_payloads(
                    info.path, start_offset=start_offset)):
                stats["records_read"] += 1
                seq = info.first_seq + start_index + i
                if seq <= after_seq:
                    continue
                stats["records_yielded"] += 1
                yield _record_from_payload(seq, payload)

    def scan(self, signature: Optional[str] = None,
             vehicle_id: Optional[str] = None,
             t0: Optional[float] = None, t1: Optional[float] = None,
             max_disorder_s: Optional[float] = None,
             ) -> Iterator[ScanHit]:
        """Forensics query over archived events.

        Filters compose conjunctively; ``t0``/``t1`` bound the *event*
        time (closed interval).  Closed segments are skipped whole when
        their ``[min_t, max_t]`` misses ``[t0, t1]``, and the sparse
        index seeks past the prefix whose watermark proves every earlier
        record is older than ``t0``.  ``max_disorder_s`` -- the stream's
        out-of-order bound (the correlator's ``max_lateness_s``) -- also
        lets the scan stop early once the watermark passes ``t1 +
        max_disorder_s``; leave ``None`` to assume nothing.
        """
        self._fh.flush()
        stats = {"segments": 0, "segments_skipped": 0, "records_read": 0,
                 "bytes_seeked": 0}
        self.last_scan_stats = stats
        for info in self._segment_infos():
            stats["segments"] += 1
            if info.min_t is not None and (
                    (t1 is not None and info.min_t > t1)
                    or (t0 is not None and info.max_t is not None
                        and info.max_t < t0)):
                stats["segments_skipped"] += 1
                continue
            start_offset, start_index = len(_MAGIC), 0
            stop_offset: Optional[int] = None
            if t0 is not None:
                for offset, index, watermark in info.checkpoints:
                    # None = no events before this checkpoint, which
                    # vacuously proves the prefix is older than t0 too.
                    if watermark is None or watermark < t0:
                        start_offset, start_index = int(offset), int(index)
                    else:
                        break
            if t1 is not None and max_disorder_s is not None:
                for offset, _, watermark in info.checkpoints:
                    if watermark is not None and (
                            watermark > t1 + max_disorder_s):
                        stop_offset = int(offset)
                        break
            stats["bytes_seeked"] += start_offset - len(_MAGIC)
            for i, (_, payload) in enumerate(_iter_payloads(
                    info.path, start_offset=start_offset,
                    stop_offset=stop_offset)):
                stats["records_read"] += 1
                record = _record_from_payload(
                    info.first_seq + start_index + i, payload)
                if record.kind != "batch":
                    continue
                for event in record.events:
                    if signature is not None and event.signature != signature:
                        continue
                    if vehicle_id is not None and event.vehicle_id != vehicle_id:
                        continue
                    if t0 is not None and event.time < t0:
                        continue
                    if t1 is not None and event.time > t1:
                        continue
                    yield ScanHit(seq=record.seq,
                                  dispatch_t=record.dispatch_t,
                                  shard=record.shard, event=event)


# ----------------------------------------------------------------------
# Snapshots
# ----------------------------------------------------------------------

class SnapshotStore:
    """CRC-guarded JSON snapshots with bounded retention.

    Files are written atomically (tmp + rename + fsync); ``load_latest``
    walks newest-first and silently skips corrupt or torn snapshots, so
    a crash mid-snapshot costs at most one snapshot interval of replay,
    never the recovery itself.  ``keep`` bounds on-disk retention (the
    log, not the snapshot chain, is the durable history).
    """

    def __init__(self, root, keep: int = 4) -> None:
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.keep = keep
        existing = self._paths()
        self._next = (
            int(existing[-1].stem.split("-")[1]) + 1 if existing else 1)

    def _paths(self) -> List[Path]:
        return sorted(self.root.glob("snap-*.json"))

    def save(self, payload: dict) -> Path:
        body = json.dumps(payload, sort_keys=True)
        wrapped = json.dumps(
            {"crc32": zlib.crc32(body.encode("utf-8")), "payload": payload},
            sort_keys=True)
        path = self.root / f"snap-{self._next:08d}.json"
        tmp = path.with_suffix(".tmp")
        with open(tmp, "w") as fh:
            fh.write(wrapped)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        self._next += 1
        for stale in self._paths()[:-self.keep]:
            stale.unlink()
        return path

    def load_latest(self) -> Optional[dict]:
        """Newest snapshot whose CRC verifies; ``None`` if none do."""
        for path in reversed(self._paths()):
            try:
                wrapped = json.loads(path.read_text())
                body = json.dumps(wrapped["payload"], sort_keys=True)
                if zlib.crc32(body.encode("utf-8")) == wrapped["crc32"]:
                    return wrapped["payload"]
            except (ValueError, KeyError, OSError):
                continue
        return None


class DurableStore:
    """One root holding the event log and the snapshot chain::

        <root>/log/seg-0000000001.log     (+ .idx.json sidecars)
        <root>/snapshots/snap-00000001.json
    """

    def __init__(self, root, *, segment_max_records: int = 4096,
                 index_every: int = 64, fsync: str = "rotate",
                 keep_snapshots: int = 4) -> None:
        self.root = Path(root)
        self.log = EventLog(self.root / "log",
                            segment_max_records=segment_max_records,
                            index_every=index_every, fsync=fsync)
        self.snapshots = SnapshotStore(self.root / "snapshots",
                                       keep=keep_snapshots)

    def close(self) -> None:
        self.log.close()
