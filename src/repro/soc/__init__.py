"""Fleet-scale Vehicle Security Operations Center (VSOC).

The paper's state-of-practice section ends where the vehicle does:
centralized security policy and in-field extensibility (§7) presuppose a
*backend* that watches the fleet, recognizes when one vehicle's incident
is actually a class-break in progress (§4.2), and pushes the fix back
out.  This package is that backend:

- :mod:`repro.soc.events` -- the normalized telemetry schema plus
  adapters from every on-vehicle alert source (IDS, V2X misbehavior,
  gateway quarantine, UDS SecurityAccess failures).
- :mod:`repro.soc.ingest` -- bounded-queue ingestion with batching,
  explicit load-shedding policies, and a backpressure signal.
- :mod:`repro.soc.shard` -- scale-out ingest: N partitioned pipelines
  (pluggable per-signature/per-region shard keys) drained round-robin
  from a worker pool with a shared capacity budget, plus the
  :class:`~repro.soc.shard.ConservationAudit` that re-proves the
  shed/backpressure accounting per shard and globally after every pump.
- :mod:`repro.soc.correlate` -- sliding-window cross-vehicle
  correlation: per-vehicle dedup, duplicate/late-event hygiene, and
  k-vehicles-in-window campaign detection.
- :mod:`repro.soc.columnar` -- the columnar hot path: drained batches
  rebuilt once as numpy arrays (:class:`~repro.soc.columnar.ColumnarBatch`)
  at dispatch time and correlated by
  :meth:`~repro.soc.correlate.CorrelationEngine.observe_columnar` in a
  handful of C-level operations -- byte-identical analytic state to the
  per-event path (differential/Hypothesis-tested), >10x the throughput.
- :mod:`repro.soc.incident` -- the incident lifecycle state machine with
  ASIL-based severity scoring.
- :mod:`repro.soc.respond` -- closed-loop remediation: authenticated
  central-policy pushes (:mod:`repro.core.policy`) and Uptane OTA
  campaigns (:mod:`repro.ota`), scored by detection-to-remediation
  latency and blast radius averted.
- :mod:`repro.soc.fleet` -- O(events) fleet workload generator (benign
  noise, seeded attack campaigns, re-emissions) for 10^2..10^5 vehicles
  scalar, 10^6+ via the numpy-vectorized path.
- :mod:`repro.soc.store` -- durable substrate: a segmented append-only
  CRC-framed event log with a sparse time index for forensics scans,
  plus atomic, CRC-guarded snapshots of the analytic state; recovery is
  snapshot + log-suffix replay (:func:`~repro.soc.center.recover_soc_state`),
  differential-tested byte-identical to an uninterrupted run.
- :mod:`repro.soc.center` -- the facade wiring it all together.
- :mod:`repro.soc.federation` -- multi-region federation: per-region
  SOCs ship their durable log-segment streams (CRC-framed shipments
  over a lag/reorder/duplicate/outage channel model) to a
  :class:`~repro.soc.federation.FederationHub` whose watermark-gated
  replay makes the fleet-wide campaign verdicts independent of delivery
  interleaving -- differential-tested identical to a single global SOC
  fed the union stream.  ``consistency="optimistic"`` trades the stall
  during a partition for provisional verdicts plus a deterministic
  reconciliation (confirm/amend/retract amendments) that restores
  byte-identity with the strict gate.
- :mod:`repro.soc.chaos` -- seeded fault injection: a declarative
  :class:`~repro.soc.chaos.FaultPlan` (region outages, WAN degradation,
  torn shipments, worker SIGKILLs) driven against a live federated
  scene or ingest service with conservation / byte-identity /
  zero-ACK-loss invariant probes at every heal point.

- :mod:`repro.soc.service` -- the network front door: an asyncio TCP
  ingest server speaking the log's ``u32len|CRC32`` frame codec, with
  explicit SUPPRESS/RESUME backpressure and credit-based flow control
  (:class:`~repro.soc.service.VehicleClient`), fanning connections out
  to shard worker *processes* -- each owning a full pipeline +
  correlator + durable store, individually crash-recoverable via
  :func:`~repro.soc.service.recover_worker` -- so ingest scales past
  the GIL.  The front door is hardened: optional CMAC-authenticated
  sessions (HELLO/CHALLENGE/AUTH handshake plus per-batch tag trailers
  verified by the owning worker, keys derived per vehicle via
  :func:`~repro.soc.service.derive_session_key`), per-client byte
  quotas (:class:`~repro.soc.ingest.TokenBucket` with hard REFUSED
  frames and flood disconnect), and a supervisor that auto-restarts
  SIGKILLed workers (snapshot + log-suffix replay + journal-deduped
  handoff resubmission) without losing a single admitted-batch ACK.

Experiment E17 (:mod:`repro.experiments.e17_soc`) sweeps fleet size and
attack prevalence over this stack; E18
(:mod:`repro.experiments.e18_federation`) sweeps cross-region detection
latency against shipping lag, including a partition/heal cell; E19
(:mod:`repro.experiments.e19_service`) measures sustained service
ingest eps and p99 ACK latency versus worker-process count; E20
(:mod:`repro.experiments.e20_hardening`) prices the hardening --
authenticated-vs-plain throughput, honest goodput under a hostile
flood, and worker MTTR with a byte-identical restart differential.
"""

from repro.soc.events import (
    DEFAULT_SOURCE_SEVERITY,
    EventSource,
    SecurityEvent,
    from_gateway_record,
    from_ids_alert,
    from_misbehavior_report,
    from_uds_security_failure,
    make_event,
    make_event_id,
    source_for_signature,
)
from repro.soc.ingest import (
    BoundedQueue,
    IngestPipeline,
    ShedPolicy,
    StageStats,
    TokenBucket,
)
from repro.soc.shard import (
    ConservationAudit,
    ConservationError,
    ShardedIngestPipeline,
    ShardKeyFn,
    region_shard_key,
    signature_shard_key,
)
from repro.soc.columnar import (
    ColumnarBatch,
    StringInterner,
    build_batch,
)
from repro.soc.correlate import (
    CampaignDetection,
    ColumnarResult,
    CorrelationEngine,
    GlobalCampaignMerger,
    ReferenceCorrelationEngine,
    k_for_fleet_size,
)
from repro.soc.incident import (
    AMENDMENT_KINDS,
    Amendment,
    Incident,
    IncidentState,
    IncidentTracker,
    InvalidTransition,
)
from repro.soc.respond import RemediationOutcome, ResponseOrchestrator
from repro.soc.fleet import (
    VECTORIZE_THRESHOLD,
    AttackCampaign,
    FleetModel,
    FleetWorkloadGenerator,
    poisson_draw,
    seeded_campaigns,
)
from repro.soc.store import (
    CorruptRecord,
    DurableStore,
    EventLog,
    LogRecord,
    ScanHit,
    SnapshotStore,
    decode_event,
    encode_event,
)
from repro.soc.center import (
    RecoveredAnalytics,
    SecurityOperationsCenter,
    recover_soc_state,
)
from repro.soc.federation import (
    FederationHub,
    SegmentReceiver,
    SegmentShipper,
    Shipment,
    ShippingChannel,
    decode_shipment,
    encode_shipment,
)
from repro.soc.chaos import (
    FAULT_KINDS,
    ChaosInvariantViolation,
    Fault,
    FaultPlan,
    FederationChaosRunner,
    ServiceChaosRunner,
)
from repro.soc.service import (
    BATCH_TAG_LEN,
    FrameStreamDecoder,
    IngestServer,
    IngestService,
    ServiceConfig,
    VehicleClient,
    WorkerCore,
    auth_tag,
    batch_tag,
    derive_session_key,
    recover_worker,
    seal_payload,
    serve,
    shard_for_client,
)

__all__ = [
    "DEFAULT_SOURCE_SEVERITY",
    "EventSource",
    "SecurityEvent",
    "from_gateway_record",
    "from_ids_alert",
    "from_misbehavior_report",
    "from_uds_security_failure",
    "make_event",
    "make_event_id",
    "source_for_signature",
    "BoundedQueue",
    "IngestPipeline",
    "ShedPolicy",
    "StageStats",
    "TokenBucket",
    "ConservationAudit",
    "ConservationError",
    "ShardedIngestPipeline",
    "ShardKeyFn",
    "region_shard_key",
    "signature_shard_key",
    "ColumnarBatch",
    "ColumnarResult",
    "StringInterner",
    "build_batch",
    "CampaignDetection",
    "CorrelationEngine",
    "GlobalCampaignMerger",
    "ReferenceCorrelationEngine",
    "k_for_fleet_size",
    "AMENDMENT_KINDS",
    "Amendment",
    "Incident",
    "IncidentState",
    "IncidentTracker",
    "InvalidTransition",
    "RemediationOutcome",
    "ResponseOrchestrator",
    "VECTORIZE_THRESHOLD",
    "AttackCampaign",
    "FleetModel",
    "FleetWorkloadGenerator",
    "poisson_draw",
    "seeded_campaigns",
    "CorruptRecord",
    "DurableStore",
    "EventLog",
    "LogRecord",
    "ScanHit",
    "SnapshotStore",
    "decode_event",
    "encode_event",
    "RecoveredAnalytics",
    "SecurityOperationsCenter",
    "recover_soc_state",
    "FederationHub",
    "SegmentReceiver",
    "SegmentShipper",
    "Shipment",
    "ShippingChannel",
    "decode_shipment",
    "encode_shipment",
    "FAULT_KINDS",
    "ChaosInvariantViolation",
    "Fault",
    "FaultPlan",
    "FederationChaosRunner",
    "ServiceChaosRunner",
    "BATCH_TAG_LEN",
    "FrameStreamDecoder",
    "IngestServer",
    "IngestService",
    "ServiceConfig",
    "VehicleClient",
    "WorkerCore",
    "auth_tag",
    "batch_tag",
    "derive_session_key",
    "recover_worker",
    "seal_payload",
    "serve",
    "shard_for_client",
]
