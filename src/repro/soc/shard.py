"""Sharded VSOC ingestion: partitioned queues, a shared drain budget,
and machine-checked conservation accounting.

A single :class:`~repro.soc.ingest.IngestPipeline` tops out around 10^5
vehicles per backend (ROADMAP "Async / multiprocess ingest"): one bounded
queue serializes admission and one drain loop serializes dispatch.  The
:class:`ShardedIngestPipeline` partitions events across ``num_shards``
independent pipelines via a pluggable :data:`ShardKeyFn` and drains them
round-robin from a simulated worker pool that shares one backend
capacity budget (``capacity_eps`` total, work-conserving: an idle
shard's slack flows to hot shards within the same pump).

Shard-key choice is a correlation-locality decision, not just load
balancing:

- :func:`signature_shard_key` (default) keeps every event of one attack
  signature on one shard, so per-shard consumers (a future shard-local
  correlator) still see whole campaigns;
- :func:`region_shard_key` partitions by vehicle, the geo/tenant layout
  an operator with regional backends would run.

Both hash with CRC-32, never :func:`hash` -- Python string hashing is
salted per process and would break run-to-run determinism.

**Scale-out must not launder events.**  HackCar-style low-cost test
benches (PAPERS.md) exist precisely because silent drops hide real
attacks; a sharded drop is even easier to lose than a single-queue one.
:class:`ConservationAudit` therefore re-proves, after every pump and for
every shard *and* the global merge, the flow-conservation identity

    offered == rejected_invalid + rejected_severity + shed
               + dispatched + still_queued

(where ``shed`` counts queue refusals plus evictions), plus the
queue-internal invariants ``offered == accepted + shed`` and
``len(q) == accepted - drained - evicted``.  A violation raises
:class:`ConservationError` immediately -- the E17 bench runs with the
audit enabled in every cell, and the differential/property tests use it
as their oracle.

Equivalence guarantee: a ``ShardedIngestPipeline`` with ``num_shards=1``
is *bit-identical* in behavior and ``metrics()`` to a plain
``IngestPipeline`` on the same event stream and pump schedule (the
differential tests pin this), so sharding is a pure scale knob, never a
semantics change.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.safety import Asil
from repro.soc.columnar import ColumnarBatch
from repro.soc.events import SecurityEvent
from repro.soc.ingest import IngestPipeline, ShedPolicy

#: Maps (event, num_shards) -> shard index in ``range(num_shards)``.
ShardKeyFn = Callable[[SecurityEvent, int], int]


def _stable_hash(text: str) -> int:
    """Process-stable 32-bit hash (CRC-32; ``hash()`` is salted)."""
    return zlib.crc32(text.encode("utf-8"))


def signature_shard_key(event: SecurityEvent, num_shards: int) -> int:
    """Partition by attack signature: one campaign, one shard."""
    return _stable_hash(event.signature) % num_shards


def region_shard_key(event: SecurityEvent, num_shards: int) -> int:
    """Partition by vehicle (a proxy for region/tenant residency)."""
    return _stable_hash(event.vehicle_id) % num_shards


class ConservationError(AssertionError):
    """An ingest pipeline's accounting no longer adds up."""


@dataclass
class ConservationAudit:
    """Re-proves ingest flow conservation after every pump.

    Checks, for a plain pipeline / each shard / the global merge::

        offered == rejected_invalid + rejected_severity
                   + (queue.shed + queue.evicted)   # all queue losses
                   + dispatched + len(queue)

    plus the queue-internal identities ``offered == accepted + shed``,
    ``len == accepted - drained - evicted``, and ``drained ==
    dispatched`` (nothing leaves the queue except through dispatch).
    ``check`` raises :class:`ConservationError` on the first violation;
    ``checks`` counts successful full audits (the E17 metrics report it
    so a silently skipped audit is itself visible).
    """

    checks: int = 0
    failures: int = 0
    last_error: Optional[str] = None

    def check(self, pipeline) -> None:
        """Audit a plain or sharded pipeline; raises on violation."""
        shards = getattr(pipeline, "shards", None)
        if shards is None:
            self._check_one("pipeline", pipeline)
        else:
            totals = {"offered": 0, "accounted": 0}
            for index, shard in enumerate(shards):
                offered, accounted = self._check_one(f"shard[{index}]", shard)
                totals["offered"] += offered
                totals["accounted"] += accounted
            if totals["offered"] != totals["accounted"]:
                self._fail(
                    "global", "merged shard accounting does not add up",
                    totals["offered"], totals["accounted"],
                )
            # The merged metrics() must publish the same decomposition:
            # summed admits split into summed refusals/evictions,
            # dispatches, and live depth across every shard.
            m = pipeline.metrics()
            merged_split = (
                m["queue_refused"] + m["queue_evicted"]
                + m["dispatched"] + m["queue_depth"]
            )
            if m["admitted"] != merged_split:
                self._fail(
                    "global",
                    "merged admitted != queue_refused + queue_evicted"
                    " + dispatched + queue_depth",
                    int(m["admitted"]), int(merged_split),
                )
        self.checks += 1

    # ------------------------------------------------------------------
    def _check_one(self, label: str, pipe: IngestPipeline):
        q = pipe.queue
        offered = pipe.stats["admit"].entered
        dispatched = pipe.stats["dispatch"].exited
        accounted = (
            pipe.rejected_invalid + pipe.rejected_severity
            + q.shed + q.evicted + dispatched + len(q)
        )
        if offered != accounted:
            self._fail(label, "offered != rejected + shed + dispatched + queued",
                       offered, accounted)
        if q.offered != q.accepted + q.shed:
            self._fail(label, "queue offered != accepted + shed",
                       q.offered, q.accepted + q.shed)
        if len(q) != q.accepted - q.drained - q.evicted:
            self._fail(label, "queue len != accepted - drained - evicted",
                       len(q), q.accepted - q.drained - q.evicted)
        if q.drained != dispatched:
            self._fail(label, "queue drained != dispatched",
                       q.drained, dispatched)
        # The same identity must be provable from the *published* metrics
        # alone: offered splits into the two admit rejections plus
        # everything the queue ever accepted (admitted = queue.offered).
        m = pipe.metrics()
        published = (
            m["rejected_invalid"] + m["rejected_severity"] + m["admitted"]
        )
        if m["offered"] != published:
            self._fail(label,
                       "metrics offered != rejected_invalid"
                       " + rejected_severity + admitted",
                       int(m["offered"]), int(published))
        # ... and the admitted side must decompose into the published
        # per-queue outcomes: refused at the door, evicted later,
        # dispatched, or still queued.  (queue_refused/queue_evicted are
        # summed per shard by the merged metrics(), so this identity is
        # provable for the global merge too, not just each shard.)
        admitted_split = (
            m["queue_refused"] + m["queue_evicted"]
            + m["dispatched"] + m["queue_depth"]
        )
        if m["admitted"] != admitted_split:
            self._fail(label,
                       "metrics admitted != queue_refused + queue_evicted"
                       " + dispatched + queue_depth",
                       int(m["admitted"]), int(admitted_split))
        return offered, accounted

    def check_service(self, service) -> None:
        """Audit an :class:`~repro.soc.service.IngestService` front
        door's batch-flow identity::

            routed == acked + buffered + in-flight + forgotten

        where *routed* excludes batches the per-client quota hard-refused
        at the door (``quota_refused`` -- those never enter a buffer,
        mirroring how the pipeline identity counts ``rejected_*`` outside
        ``admitted``), and *forgotten* is work an operator-level
        :meth:`~repro.soc.service.IngestService.kill_worker` deliberately
        dropped.  The published :meth:`~repro.soc.service.IngestService.\
metrics` must republish every term (cooked-counter detection, same as
        the pipeline audit), including ``quota_refused``.
        """
        m = service.metrics()
        routed = service.batches_routed
        accounted = (service.batches_acked + service.buffered()
                     + service.inflight_batches()
                     + service.batches_forgotten)
        if routed != accounted:
            self._fail("service",
                       "routed != acked + buffered + inflight + forgotten",
                       routed, accounted)
        for key, attr in (("batches_routed", service.batches_routed),
                          ("batches_acked", service.batches_acked),
                          ("quota_refused", service.quota_refused),
                          ("batches_forgotten", service.batches_forgotten),
                          ("buffered", service.buffered()),
                          ("inflight_batches", service.inflight_batches())):
            if m.get(key) != float(attr):
                self._fail("service", f"metrics {key} diverged from truth",
                           int(m.get(key, -1)), attr)
        self.checks += 1

    def _fail(self, label: str, what: str, lhs: int, rhs: int) -> None:
        self.failures += 1
        self.last_error = f"{label}: {what} ({lhs} != {rhs})"
        raise ConservationError(self.last_error)


class ShardedIngestPipeline:
    """N partitioned :class:`IngestPipeline` shards behind one facade.

    Admission routes each event to ``shard_key(event, num_shards)``;
    draining simulates a worker pool sharing one backend budget of
    ``capacity_eps`` events per simulated second: each pump converts
    elapsed time into an allowance (same carry arithmetic as the plain
    pipeline, including the first-pump ``batch_size``-per-worker grant)
    and hands it out round-robin, at most one batch per shard per turn,
    skipping drained shards -- work-conserving, so a single hot shard
    can use the whole budget when the others are idle.

    ``queue_capacity`` is **per shard** (memory bound scales with the
    worker pool, exactly as N real consumer processes would).  Each
    shard keeps its own congestion watermark; :meth:`congested_for`
    exposes the per-shard signal so workload sources throttle only the
    telemetry headed for a hot partition, and :attr:`congested` /
    :attr:`fully_congested` give the any/all aggregates.

    ``metrics()`` returns the same keys as ``IngestPipeline.metrics()``
    with counters summed across shards (``queue_depth_max`` is the
    hottest single shard's peak -- the bounded-memory guarantee is per
    queue); per-shard tables come from :meth:`shard_metrics`.  With
    ``num_shards=1`` every observable -- sink call order, congestion
    flips, ``metrics()`` bytes -- matches a plain pipeline exactly.
    """

    def __init__(
        self,
        num_shards: int = 4,
        shard_key: Optional[ShardKeyFn] = None,
        capacity_eps: float = 250.0,
        queue_capacity: int = 2048,
        batch_size: int = 64,
        shed_policy: ShedPolicy = ShedPolicy.LOWEST_SEVERITY,
        min_severity: Asil = Asil.QM,
        congestion_watermark: float = 0.5,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.num_shards = num_shards
        self.shard_key: ShardKeyFn = shard_key or signature_shard_key
        self.capacity_eps = capacity_eps
        self.batch_size = batch_size
        self.shards: List[IngestPipeline] = [
            IngestPipeline(
                capacity_eps=capacity_eps / num_shards,  # nominal worker share
                queue_capacity=queue_capacity,
                batch_size=batch_size,
                shed_policy=shed_policy,
                min_severity=min_severity,
                congestion_watermark=congestion_watermark,
            )
            for _ in range(num_shards)
        ]
        self._last_pump: Optional[float] = None
        self._carry = 0.0
        self._rr = 0  # round-robin cursor, persists across pumps for fairness

    # ------------------------------------------------------------------
    # Front door
    # ------------------------------------------------------------------
    def add_sink(self, sink: Callable[[float, SecurityEvent], None]) -> None:
        for shard in self.shards:
            shard.add_sink(sink)

    def add_batch_sink(
        self, sink: Callable[[float, List[SecurityEvent]], None]
    ) -> None:
        """Register a batch consumer on every shard: drained events are
        delivered per shard as lists (one Python call per batch, not per
        event), in the same order the per-event sinks would see them.
        Shard-*local* consumers (e.g. per-shard correlators) register on
        ``shards[i]`` directly instead."""
        for shard in self.shards:
            shard.add_batch_sink(sink)

    def add_columnar_sink(
        self, sink: Callable[[float, ColumnarBatch], None]
    ) -> None:
        """Register a columnar consumer on every shard: drained batches
        are delivered as :class:`~repro.soc.columnar.ColumnarBatch`
        (built once per drain, shared across sinks).  Shard-*local*
        consumers register on ``shards[i]`` directly instead."""
        for shard in self.shards:
            shard.add_columnar_sink(sink)

    def shard_of(self, event: SecurityEvent) -> int:
        return self.shard_key(event, self.num_shards)

    def offer(self, now: float, event: SecurityEvent) -> bool:
        return self.shards[self.shard_of(event)].offer(now, event)

    @property
    def congested(self) -> bool:
        """True if *any* shard is past its watermark (conservative)."""
        return any(shard.congested for shard in self.shards)

    @property
    def fully_congested(self) -> bool:
        """True if *every* shard is past its watermark -- the bulk
        source-suppression fast path may then skip event construction."""
        return all(shard.congested for shard in self.shards)

    def congested_for(self, event: SecurityEvent) -> bool:
        """Per-shard backpressure: only throttle telemetry whose own
        partition is hot."""
        return self.shards[self.shard_of(event)].congested

    @property
    def shed_rate(self) -> float:
        offered = sum(s.queue.offered for s in self.shards)
        lost = sum(s.queue.lost for s in self.shards)
        return lost / offered if offered else 0.0

    # ------------------------------------------------------------------
    # Worker pool
    # ------------------------------------------------------------------
    def pump(self, now: float) -> int:
        """One worker-pool drain round within the shared budget.

        Budget arithmetic mirrors :meth:`IngestPipeline.pump` (including
        the first-pump quirk, scaled to one cold batch per worker) so a
        one-shard pool is indistinguishable from no pool at all.
        """
        if self._last_pump is None:
            budget = float(self.batch_size * self.num_shards)
        else:
            budget = self._carry + self.capacity_eps * max(0.0, now - self._last_pump)
        self._last_pump = now
        allowance = int(budget)
        self._carry = min(budget - allowance, self.capacity_eps)
        return self._dispatch_rounds(now, allowance)

    def _dispatch_rounds(self, now: float, allowance: int) -> int:
        """Round-robin worker-pool drain of up to ``allowance`` events."""
        dispatched = 0
        active = [s for s in self.shards if len(s.queue)]
        while dispatched < allowance and active:
            shard = active[self._rr % len(active)]
            want = min(self.batch_size, allowance - dispatched)
            got = shard.dispatch(now, want)
            dispatched += got
            if got < want or not len(shard.queue):
                active.remove(shard)  # drained dry; cursor stays put
            else:
                self._rr += 1
        if not active:
            self._rr = 0
        return dispatched

    @property
    def queue_depth(self) -> int:
        """Events currently queued across every shard."""
        return sum(len(s.queue) for s in self.shards)

    def drain_all(self, now: float) -> int:
        """Dispatch everything still queued, bypassing the shared budget
        (same round-robin drain order as :meth:`pump`; end-of-run use)."""
        return self._dispatch_rounds(now, self.queue_depth)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def metrics(self) -> Dict[str, float]:
        """Merged counters, same schema as ``IngestPipeline.metrics()``."""
        merged: Dict[str, float] = {}
        latency_sum = 0.0
        for shard in self.shards:
            for key, value in shard.metrics().items():
                merged[key] = merged.get(key, 0.0) + value
            latency_sum += shard.stats["dispatch"].latency_sum_s
        dispatched = merged.get("dispatched", 0.0)
        merged["shed_rate"] = self.shed_rate
        merged["queue_depth_max"] = max(
            float(s.queue.depth_max) for s in self.shards)
        merged["mean_dispatch_latency_s"] = (
            latency_sum / dispatched if dispatched else 0.0)
        merged["max_dispatch_latency_s"] = max(
            s.stats["dispatch"].latency_max_s for s in self.shards)
        return merged

    def shard_metrics(self) -> List[Dict[str, float]]:
        """Per-shard metric dicts, index-aligned with :attr:`shards`."""
        return [shard.metrics() for shard in self.shards]
