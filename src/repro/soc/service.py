"""Multiprocess network ingest service: asyncio frontend + shard workers.

Until now every event entered the VSOC through in-process Python calls;
this module is the front door ROADMAP names ("Live ingest service
frontend"): an :mod:`asyncio` TCP server that thousands of vehicle
connections report into, feeding a pool of **shard worker processes**
so the GIL stops being the scaling wall.

Topology::

    vehicles (VehicleClient) --TCP frames--> IngestServer (asyncio, 1 proc)
        |  HELLO/BATCH -->                        |
        |  <-- WELCOME/ACK/SUPPRESS/RESUME        | route by client id
        |                                         v
        |                    per-shard handoff buffers (raw frame bytes)
        |                                         |  one queue put per
        |                                         v  drained buffer
        |                          shard worker process 0..N-1, each:
        |                            IngestPipeline -> CorrelationEngine
        |                            -> IncidentTracker -> EventLog+snapshots
        |                                         |
        +------------- completion reports --------+

Design rules, each load-bearing for the >=3x multiprocess scaling:

- **The frontend never decodes an event.**  Clients serialize batches
  once (the same canonical-JSON event objects the durable log stores,
  inside the same ``u32len|CRC32`` envelope -- wire bytes, log bytes and
  shipment bytes share one codec); the frontend splits frames, reads the
  batch id with a 2-comma scan, and forwards the *raw payload bytes* to
  the owning shard's buffer.  All JSON and correlation cost lands in the
  worker processes.
- **Serialize once per drained batch.**  A handoff posts one message --
  ``(t_send, [(conn, batch_id, payload), ...])`` -- per buffer drain,
  not one per event, so queue pickling amortizes exactly like the
  pipeline's batch sinks do.
- **Sharding is by client id** (CRC-32, like
  :func:`~repro.soc.shard.region_shard_key`): one vehicle, one worker,
  so per-vehicle dedup and per-signature windows stay worker-local for
  region-resident campaigns, and a connection has exactly one
  backpressure authority.
- **Backpressure is explicit.**  The existing source-suppression signal
  (:attr:`~repro.soc.ingest.IngestPipeline.congested`) is sampled by the
  worker after admission and propagated -- together with the frontend's
  own outstanding-handoff watermark -- back to every connection on that
  shard as SUPPRESS/RESUME frames; :class:`VehicleClient` then sheds
  ASIL-A telemetry at the source (counted, never silent), exactly like
  the in-simulation :class:`~repro.soc.fleet.FleetWorkloadGenerator`.
- **Credit-based flow control.**  WELCOME grants each connection
  ``credits`` in-flight batches; every ACK (sent only after the owning
  worker has *dispatched* the batch) returns one.  A client can never
  overrun the service faster than workers drain, and the ACK round-trip
  is the honest per-batch ingest-latency measurement E19 reports p99 of.

Every worker owns a full single-shard analytic stack -- ingest pipeline,
:class:`~repro.soc.correlate.CorrelationEngine`, incident tracker, and a
:class:`~repro.soc.store.DurableStore` -- driven through
:meth:`~repro.soc.center.SecurityOperationsCenter.service_pump`, so the
PR 4 recovery contract holds **per worker**: SIGKILL a worker process,
then :func:`recover_worker` (snapshot + log-suffix replay) rebuilds its
correlator state byte-identically (``tests/test_soc_service.py``).

``mode="inline"`` is the deterministic single-process fallback: the same
wire path, buffers and worker cores, with handoffs executed synchronously
in the caller's process.  It is differential-tested byte-identical (final
analytics snapshot *and* log bytes) to driving the existing in-process
pipeline directly, so the network layer is a transport, never a
semantics change.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing as mp
import os
import queue as queue_mod
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.safety import Asil
from repro.crypto.cmac import aes_cmac, cmac_verify
from repro.crypto.kdf import hkdf
from repro.sim import Simulator
from repro.soc.center import (
    RecoveredAnalytics,
    SecurityOperationsCenter,
    recover_soc_state,
)
from repro.soc.events import SecurityEvent
from repro.soc.fleet import FleetModel
from repro.soc.ingest import TokenBucket
from repro.soc.shard import ConservationAudit, _stable_hash
from repro.soc.store import (
    _MAGIC,
    _scan_valid_prefix,
    CorruptRecord,
    DurableStore,
    canonical_dumps,
    event_from_obj,
    event_to_obj,
    frame_payload,
    unframe_payload,
)

__all__ = [
    "BATCH_TAG_LEN",
    "PROTOCOL_VERSION",
    "FrameStreamDecoder",
    "IngestServer",
    "IngestService",
    "ServiceConfig",
    "VehicleClient",
    "WorkerCore",
    "WorkerReport",
    "auth_tag",
    "batch_id_of",
    "batch_tag",
    "decode_message",
    "derive_session_key",
    "encode_ack",
    "encode_auth",
    "encode_batch",
    "encode_bye",
    "encode_challenge",
    "encode_hello",
    "encode_refused",
    "encode_resume",
    "encode_suppress",
    "encode_welcome",
    "recover_worker",
    "seal_payload",
    "serve",
    "shard_for_client",
    "worker_root",
]

PROTOCOL_VERSION = 1

#: Wire message tags (first element of every canonical-JSON payload,
#: mirroring the log's ``"b"``/``"m"`` record tags).
_T_HELLO = "h"
_T_WELCOME = "w"
_T_BATCH = "e"
_T_ACK = "a"
_T_SUPPRESS = "s"
_T_RESUME = "r"
_T_BYE = "q"
_T_CHALLENGE = "c"
_T_AUTH = "u"
_T_REFUSED = "n"


# ----------------------------------------------------------------------
# Wire codec: canonical JSON payloads in the log's u32len|CRC32 envelope
# ----------------------------------------------------------------------

def encode_hello(client_id: str) -> bytes:
    """Connection opener (client -> server): declares the client id the
    frontend shards on."""
    return canonical_dumps([_T_HELLO, client_id, PROTOCOL_VERSION])


def encode_welcome(shard: int, num_workers: int, credits: int) -> bytes:
    """HELLO response (server -> client): the connection's shard, the
    worker fan-out, and the initial flow-control credit grant."""
    return canonical_dumps([_T_WELCOME, shard, num_workers, credits])


def encode_batch(batch_id: int, events: Sequence[SecurityEvent]) -> bytes:
    """One client event batch.  The events ride as the exact canonical
    objects the durable log stores (:func:`~repro.soc.store.event_to_obj`),
    so a worker's archival tap re-serializes them byte-identically."""
    return canonical_dumps(
        [_T_BATCH, batch_id, [event_to_obj(e) for e in events]])


def encode_ack(batch_id: int, accepted: int, credits: int) -> bytes:
    """Batch acknowledgement (server -> client), sent after the owning
    worker *dispatched* the batch: how many events were admitted, and
    how many flow-control credits this ACK returns."""
    return canonical_dumps([_T_ACK, batch_id, accepted, credits])


def encode_suppress() -> bytes:
    """Backpressure on (server -> client): shed ASIL-A telemetry at the
    source until RESUME."""
    return canonical_dumps([_T_SUPPRESS])


def encode_resume() -> bytes:
    """Backpressure off (server -> client)."""
    return canonical_dumps([_T_RESUME])


def encode_bye() -> bytes:
    """Orderly close (either direction)."""
    return canonical_dumps([_T_BYE])


def encode_challenge(nonce: bytes) -> bytes:
    """Authentication challenge (server -> client): a fresh server
    nonce the client must CMAC with its session key to prove identity
    before the frontend will open the connection."""
    return canonical_dumps([_T_CHALLENGE, nonce.hex()])


def encode_auth(tag: bytes) -> bytes:
    """Challenge response (client -> server): the AES-CMAC tag over
    the auth context, client id, and server nonce."""
    return canonical_dumps([_T_AUTH, tag.hex()])


def encode_refused(batch_id: int, credits: int) -> bytes:
    """Quota refusal (server -> client): the batch was hard-refused at
    the front door (over the per-client rate quota) -- its events were
    *not* admitted -- and ``credits`` flow-control credits return so the
    client's ledger stays live."""
    return canonical_dumps([_T_REFUSED, batch_id, credits])


#: AES-CMAC domain-separation context for the session handshake.
AUTH_CONTEXT = b"vsoc-auth-v1"
#: Raw CMAC trailer bytes appended to every authenticated BATCH payload.
BATCH_TAG_LEN = 16
_SESSION_SALT = b"vsoc-ingest-session-v1"


def derive_session_key(fleet_key: bytes, client_id: str) -> bytes:
    """Per-vehicle session key from the fleet key material: HKDF-SHA256
    keyed by the fleet key, bound to the client id -- the same
    derive-don't-distribute discipline as the SHE key hierarchy
    (:func:`~repro.crypto.kdf.she_kdf`), so the backend never stores a
    per-vehicle secret it cannot re-derive."""
    return hkdf(fleet_key, 16, salt=_SESSION_SALT,
                info=client_id.encode("utf-8"))


def auth_tag(session_key: bytes, client_id: str, nonce: bytes) -> bytes:
    """Handshake proof: CMAC over ``context|client_id|nonce``."""
    return aes_cmac(session_key,
                    AUTH_CONTEXT + b"|" + client_id.encode("utf-8")
                    + b"|" + nonce)


def batch_tag(session_key: bytes, client_id: str, batch_id: int,
              payload: bytes) -> bytes:
    """Per-batch authentication tag: CMAC over
    ``client_id|batch_id|payload`` -- binds the batch to the session
    *and* to its flow-control slot, so a tag cannot be replayed onto
    another client's (or another batch id's) payload."""
    return aes_cmac(session_key,
                    client_id.encode("utf-8")
                    + b"|%d|" % batch_id + payload)


def seal_payload(session_key: bytes, client_id: str,
                 payload: bytes) -> bytes:
    """Append the :func:`batch_tag` trailer to an encoded BATCH payload.

    The tag rides *outside* the canonical JSON, after it: the frontend's
    2-comma :func:`batch_id_of` scan and the ``'["e"'`` fast-path prefix
    both still work on the sealed bytes, so the frontend keeps never
    decoding events -- only the owning worker splits and verifies the
    trailer."""
    return payload + batch_tag(session_key, client_id,
                               batch_id_of(payload), payload)


def decode_message(payload: bytes) -> Tuple:
    """Decode one unframed wire payload to ``(tag, *fields)``.

    BATCH payloads come back as ``("e", batch_id, [SecurityEvent, ...])``
    -- the inverse of :func:`encode_batch`, hypothesis-tested
    byte-identical on the round trip.  Unknown tags raise
    :class:`~repro.soc.store.CorruptRecord` (a framed-but-nonsense
    payload is rejected, never half-interpreted).
    """
    try:
        obj = json.loads(payload.decode("utf-8"))
        tag = obj[0]
        if tag == _T_BATCH:
            return (_T_BATCH, int(obj[1]), [event_from_obj(o) for o in obj[2]])
        if tag == _T_ACK:
            return (_T_ACK, int(obj[1]), int(obj[2]), int(obj[3]))
        if tag == _T_HELLO:
            return (_T_HELLO, obj[1], int(obj[2]))
        if tag == _T_WELCOME:
            return (_T_WELCOME, int(obj[1]), int(obj[2]), int(obj[3]))
        if tag == _T_CHALLENGE:
            return (_T_CHALLENGE, str(obj[1]))
        if tag == _T_AUTH:
            return (_T_AUTH, str(obj[1]))
        if tag == _T_REFUSED:
            return (_T_REFUSED, int(obj[1]), int(obj[2]))
        if tag in (_T_SUPPRESS, _T_RESUME, _T_BYE):
            return (tag,)
    except CorruptRecord:
        raise
    except Exception as exc:
        raise CorruptRecord(f"undecodable wire payload: {exc}") from exc
    raise CorruptRecord(f"unknown wire tag {tag!r}")


def batch_id_of(payload: bytes) -> int:
    """Fast batch-id extraction from a raw BATCH payload -- a two-comma
    scan, no JSON parse.  This is the *only* field the frontend reads
    from a batch; everything else is decoded by the owning worker.

    A malformed payload (missing comma, non-integer id) raises
    :class:`~repro.soc.store.CorruptRecord`, never a bare
    ``ValueError``: the frontend's one deliberate drop-the-connection
    path classifies it, instead of an unclassified error killing the
    reader coroutine."""
    try:
        first = payload.index(b",")
        return int(payload[first + 1:payload.index(b",", first + 1)])
    except ValueError as exc:
        raise CorruptRecord(
            f"malformed BATCH payload (no scannable batch id): {exc}"
        ) from exc


class FrameStreamDecoder:
    """Incremental decoder for a TCP stream of ``u32len|CRC32`` frames.

    ``feed(data)`` returns every whole, CRC-valid payload completed by
    ``data`` (zero or more) and buffers any trailing partial frame -- a
    torn frame is simply *incomplete*, never delivered.  Damage that is
    provable (CRC mismatch, or a length field beyond ``max_frame_bytes``)
    raises :class:`~repro.soc.store.CorruptRecord`: on a TCP stream there
    is no resynchronization point after a bad header, so the connection
    must be dropped, mirroring how the log rejects a corrupt record
    before the tail.
    """

    _HDR = 8  # u32 len + u32 crc, same header the log's segments use

    def __init__(self, max_frame_bytes: int = 1 << 24) -> None:
        self.max_frame_bytes = max_frame_bytes
        self._buf = bytearray()
        self.frames_decoded = 0
        #: Bytes this decoder *accepted* (delivered or buffered toward a
        #: frame).  Data that provoked a CorruptRecord is counted in
        #: ``bytes_rejected`` instead -- an attacker's oversized-header
        #: probe must not inflate the accepted-byte accounting the
        #: pre-auth byte cap reads.
        self.bytes_fed = 0
        self.bytes_rejected = 0

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward an incomplete frame."""
        return len(self._buf)

    def feed(self, data: bytes) -> List[bytes]:
        self._buf += data
        out: List[bytes] = []
        buf = self._buf
        pos = 0
        try:
            while len(buf) - pos >= self._HDR:
                length = int.from_bytes(buf[pos:pos + 4], "little")
                if length > self.max_frame_bytes:
                    raise CorruptRecord(
                        f"frame length {length} exceeds "
                        f"{self.max_frame_bytes}")
                end = pos + self._HDR + length
                if len(buf) < end:
                    break
                # unframe_payload re-checks length and CRC -- one code
                # path for wire frames, log records, and shipments.
                out.append(unframe_payload(bytes(buf[pos:end])))
                self.frames_decoded += 1
                pos = end
        except CorruptRecord:
            self.bytes_rejected += len(data)
            raise
        self.bytes_fed += len(data)
        if pos:
            del buf[:pos]
        return out


# ----------------------------------------------------------------------
# Worker core: one shard's full analytic stack
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ServiceConfig:
    """Per-worker analytic configuration (picklable -- it crosses the
    ``multiprocessing`` boundary at worker spawn).

    Correlation-hygiene parameters mirror
    :class:`~repro.soc.center.SecurityOperationsCenter`; the ingest queue
    is sized for a network front door (deep queue, generous batch) rather
    than a simulated capacity budget, and ``fsync="never"`` keeps the
    durable log OS-buffered: :meth:`~repro.soc.center.SecurityOperations\
Center.service_pump` flushes after every handoff, so a worker *process*
    kill loses nothing acknowledged (machine-crash durability is the
    operator's fsync-policy knob, priced by the store microbench)."""

    window_s: float = 8.0
    k: int = 3
    dedup_window_s: float = 4.0
    max_lateness_s: float = 2.0
    queue_capacity: int = 1 << 16
    batch_size: int = 256
    shed_policy_value: str = "lowest-severity"
    columnar: bool = False
    snapshot_every_pumps: int = 256
    fsync: str = "never"
    audit: bool = True
    #: Fleet key material for CMAC-authenticated sessions.  ``None``
    #: (default) keeps the PR 7 plain protocol; set, the handshake
    #: becomes HELLO -> CHALLENGE -> AUTH -> WELCOME and every BATCH
    #: payload must carry a :func:`batch_tag` trailer the owning worker
    #: verifies (the per-vehicle session key is re-derived on both
    #: sides via :func:`derive_session_key` -- never distributed).
    fleet_key: Optional[bytes] = None


def worker_root(root, index: int) -> Path:
    """Durable-store root for shard worker ``index`` under the service
    root (one independent store per worker -- recovery is per worker)."""
    return Path(root) / f"worker-{index:02d}"


class _HandoffJournal:
    """Append-only CRC-framed record of ``handoff seq -> ack tuples``.

    The exactly-once half of the auto-restart protocol.  The event log's
    pump marker is the commit point (restart truncates the log back to
    the last marker and replays to it), so the worker's invariant is
    ``handoff seq == pump number``: a resubmitted handoff with
    ``seq <= recovered pump_no`` was already fully processed and sealed
    -- re-running it would double-admit -- and the only thing the
    restarted worker still owes the frontend is the *ack report* the old
    process died holding.  This sidecar preserves exactly that: each
    entry is written (and flushed) between the handoff's batch records
    and its marker, so any sealed handoff provably has its acks on disk.

    A separate file from the event log on purpose: the log bytes must
    stay byte-identical to an uninterrupted twin run, and twin runs
    never crash.  Torn tails are tolerated the same way the log's are
    (valid-prefix scan); the file is bounded by periodic rewrite --
    only recent seqs can ever be resubmitted (the frontend's in-flight
    ledger is shallow), so old entries are dead weight.
    """

    def __init__(self, path, keep: int = 256) -> None:
        self.path = Path(path)
        self.keep = keep
        self.entries: Dict[int, Tuple[Tuple[int, int, int, int], ...]] = {}
        if self.path.exists():
            payloads, _ = _scan_valid_prefix(self.path)
            for payload in payloads:
                obj = json.loads(payload.decode("utf-8"))
                self.entries[int(obj[1])] = tuple(
                    tuple(int(x) for x in ack) for ack in obj[2])
        else:
            self.path.write_bytes(_MAGIC)
        self._fh = open(self.path, "ab")

    def lookup(self, seq: int) -> Tuple[Tuple[int, int, int, int], ...]:
        return self.entries.get(seq, ())

    def record(self, seq: int,
               acks: Sequence[Tuple[int, int, int, int]]) -> None:
        self.entries[seq] = tuple(tuple(a) for a in acks)
        self._fh.write(frame_payload(canonical_dumps(
            ["j", seq, [list(a) for a in acks]])))
        # Flushed, not fsynced: the journal only needs to be as durable
        # as the pump marker it precedes (the log's fsync policy knob
        # governs machine-crash durability for both).
        self._fh.flush()
        if len(self.entries) > 2 * self.keep:
            self._rewrite()

    def _rewrite(self) -> None:
        recent = sorted(self.entries)[-self.keep:]
        self.entries = {seq: self.entries[seq] for seq in recent}
        self._fh.close()
        tmp = self.path.with_suffix(".tmp")
        with open(tmp, "wb") as fh:
            fh.write(_MAGIC)
            for seq in recent:
                fh.write(frame_payload(canonical_dumps(
                    ["j", seq, [list(a) for a in self.entries[seq]]])))
        os.replace(tmp, self.path)
        self._fh = open(self.path, "ab")

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()


class WorkerCore:
    """One shard worker's state: a single-shard observe-only
    :class:`~repro.soc.center.SecurityOperationsCenter` (ingest pipeline,
    correlation engine, incident tracker, durable store) plus the wire
    decode loop.  Runs identically inline (fallback mode) or inside a
    worker process -- the process wrapper is pure transport.
    """

    def __init__(self, index: int, root=None,
                 config: Optional[ServiceConfig] = None,
                 recover: bool = False) -> None:
        from repro.soc.ingest import ShedPolicy  # local: avoid cycle at import

        self.index = index
        self.config = config = config or ServiceConfig()
        store = None
        recovered = None
        if root is not None:
            store = DurableStore(worker_root(root, index),
                                 fsync=config.fsync)
            if recover:
                # Auto-restart path: truncate the log back to the last
                # pump marker (the commit point), then rebuild analytic
                # state exactly at that handoff boundary.  The frontend
                # resubmits everything past it, and re-processing those
                # handoffs re-archives the exact bytes the twin wrote.
                store.log.truncate_after_last_mark()
                try:
                    recovered = recover_soc_state(
                        store, mark_boundary_only=True)
                except RuntimeError:  # pragma: no cover - killed pre-snap-0
                    recovered = None  # nothing recoverable: start fresh
        elif recover:
            raise ValueError("recover=True requires a durable root")
        self.soc = SecurityOperationsCenter(
            Simulator(), FleetModel(0, []),
            queue_capacity=config.queue_capacity,
            batch_size=config.batch_size,
            shed_policy=ShedPolicy(config.shed_policy_value),
            window_s=config.window_s, k=config.k,
            dedup_window_s=config.dedup_window_s,
            max_lateness_s=config.max_lateness_s,
            respond=False, num_shards=1, audit=config.audit,
            columnar=config.columnar, store=store,
            snapshot_every_pumps=config.snapshot_every_pumps,
        )
        if recovered is not None:
            # Adopt *before* start_service(): the arming snapshot must
            # capture the recovered state, not clobber the latest good
            # snapshot with a fresh empty one.
            self.soc.adopt_analytics(recovered)
        self.soc.start_service()
        self._journal = (_HandoffJournal(worker_root(root, index)
                                         / "handoff-journal.log")
                         if root is not None else None)
        self._session_keys: Dict[str, bytes] = {}
        self.handoffs = 0
        self.events_in = 0
        self.events_dispatched = 0
        self.decode_errors = 0
        self.cmac_rejected = 0
        self.replayed_handoffs = 0
        self.handoff_latency_sum_s = 0.0
        self.handoff_latency_max_s = 0.0

    def _open_sealed(self, client_id: str, batch_id: int,
                     payload: bytes) -> Optional[bytes]:
        """Split and verify an authenticated BATCH payload's CMAC
        trailer; returns the inner payload, or ``None`` on a missing or
        tampered tag (constant-time compare via ``cmac_verify``)."""
        if len(payload) <= BATCH_TAG_LEN:
            return None
        body, tag = payload[:-BATCH_TAG_LEN], payload[-BATCH_TAG_LEN:]
        key = self._session_keys.get(client_id)
        if key is None:
            key = self._session_keys[client_id] = derive_session_key(
                self.config.fleet_key, client_id)
        if not cmac_verify(key,
                           client_id.encode("utf-8") + b"|%d|" % batch_id
                           + body, tag):
            return None
        return body

    def ingest_handoff(self, t_send: float,
                       items: Sequence[Tuple[int, str, int, bytes]],
                       seq: int = -1,
                       t_mono: Optional[float] = None) -> "WorkerReport":
        """Process one frontend handoff: verify each batch's CMAC
        trailer (authenticated mode), decode it, admit its events at
        ``t_send`` (the frontend's routing timestamp, so one handoff is
        one deterministic ingest instant -- and the pump marker's
        recorded time, which replay must reproduce), dispatch everything
        via ``service_pump``, and report per-batch admission counts for
        the frontend's ACKs.

        ``seq`` is the frontend's per-shard handoff sequence number; the
        worker maintains ``seq == pump number``.  A resubmitted handoff
        whose ``seq`` is already sealed (``<= pump_no``) is *not*
        re-processed -- its recorded acks come back from the handoff
        journal, which is what makes crash + resubmit exactly-once.

        A payload that fails to decode is refused whole (``accepted=-1``
        in the report -- the frontend closes that connection), never
        half-admitted; a tampered or missing CMAC trailer likewise
        refuses whole with ``accepted=-2`` (counted separately: a bad
        tag is an authentication event, not a framing accident).
        ``t_mono`` (the frontend's monotonic send stamp) feeds only the
        latency metrics -- never admission or marker times.
        """
        soc = self.soc
        if 0 <= seq <= soc._pump_no:
            self.replayed_handoffs += 1
            acks = self._journal.lookup(seq) if self._journal else ()
            return WorkerReport(shard=self.index, acks=tuple(acks),
                                dispatched=0,
                                congested=soc.pipeline.congested,
                                pump_no=soc._pump_no,
                                queue_depth=soc.pipeline.queue_depth,
                                handoff_seq=seq)
        pipeline = soc.pipeline
        offer = pipeline.offer
        authenticated = self.config.fleet_key is not None
        acks: List[Tuple[int, int, int, int]] = []
        for conn, client_id, batch_id, payload in items:
            if authenticated:
                payload = self._open_sealed(client_id, batch_id, payload)
                if payload is None:
                    self.cmac_rejected += 1
                    acks.append((conn, batch_id, 0, -2))
                    continue
            try:
                _, _, events = decode_message(payload)
            except CorruptRecord:
                self.decode_errors += 1
                acks.append((conn, batch_id, 0, -1))
                continue
            accepted = 0
            for event in events:
                accepted += offer(t_send, event)
            self.events_in += len(events)
            acks.append((conn, batch_id, len(events), accepted))
        # Sample the existing source-suppression signal *after* admission
        # (the queue is at its handoff peak) -- this is the bit the
        # frontend propagates to clients as SUPPRESS/RESUME.
        congested = pipeline.congested
        # Journal between the archived batches and the marker: a sealed
        # handoff (marker durable) provably has its acks recorded, and a
        # journaled-but-unsealed one is re-run whole after log truncation
        # (the stale entry is simply overwritten).
        pre_mark = None
        if self._journal is not None and seq >= 0:
            pre_mark = lambda: self._journal.record(seq, acks)  # noqa: E731
        dispatched = soc.service_pump(t_send, pre_mark=pre_mark)
        self.events_dispatched += dispatched
        self.handoffs += 1
        if t_mono is not None:
            wait = max(0.0, time.monotonic() - t_mono)
            self.handoff_latency_sum_s += wait
            if wait > self.handoff_latency_max_s:
                self.handoff_latency_max_s = wait
        return WorkerReport(shard=self.index, acks=tuple(acks),
                            dispatched=dispatched, congested=congested,
                            pump_no=soc._pump_no,
                            queue_depth=pipeline.queue_depth,
                            handoff_seq=seq)

    def metrics(self) -> Dict[str, float]:
        """The center's full metrics dict plus service-side counters."""
        out = self.soc.metrics()
        out["service_handoffs"] = float(self.handoffs)
        out["service_events_in"] = float(self.events_in)
        out["service_decode_errors"] = float(self.decode_errors)
        out["service_cmac_rejected"] = float(self.cmac_rejected)
        out["service_replayed_handoffs"] = float(self.replayed_handoffs)
        out["service_handoff_latency_max_s"] = self.handoff_latency_max_s
        out["service_handoff_latency_mean_s"] = (
            self.handoff_latency_sum_s / self.handoffs if self.handoffs
            else 0.0)
        return out

    def close(self) -> None:
        """Final snapshot + orderly store close (clean shutdown path;
        the crash path needs neither -- that is the point)."""
        if self._journal is not None:
            self._journal.close()
        if self.soc.store is not None:
            self.soc.save_snapshot()
            self.soc.store.close()


@dataclass(frozen=True)
class WorkerReport:
    """One handoff's completion report (worker -> frontend)."""

    shard: int
    #: per client batch: (conn token, batch id, offered, accepted);
    #: accepted == -1 flags an undecodable payload (connection fault),
    #: accepted == -2 a tampered/missing CMAC trailer (auth fault).
    acks: Tuple[Tuple[int, int, int, int], ...]
    dispatched: int
    congested: bool
    pump_no: int
    queue_depth: int
    #: The frontend's per-shard handoff sequence number this report
    #: answers; the frontend's in-flight ledger pops it exactly once
    #: (a duplicate -- e.g. a pre-crash report racing the restarted
    #: worker's journal replay -- is dropped, not double-accounted).
    handoff_seq: int = -1


def recover_worker(root, index: int,
                   for_restart: bool = False) -> RecoveredAnalytics:
    """Rebuild shard worker ``index``'s analytic state from its durable
    store -- the per-worker crash-recovery entry point (snapshot +
    log-suffix replay via :func:`~repro.soc.center.recover_soc_state`).

    ``for_restart`` applies the live auto-restart discipline offline:
    stop at the last sealed handoff boundary (trailing batch records
    past the last pump marker belong to a handoff the frontend will
    resubmit) instead of replaying every surviving record."""
    return recover_soc_state(DurableStore(worker_root(root, index)),
                             mark_boundary_only=for_restart)


# ----------------------------------------------------------------------
# Backends: inline (deterministic fallback) and multiprocess
# ----------------------------------------------------------------------

class _InlineBackend:
    """Single-process fallback: handoffs run synchronously in the
    caller.  Deterministic -- same cores, same wire path, no queues --
    which is what keeps the byte-identity differential tests meaningful.
    """

    mode = "inline"

    def __init__(self, num_workers: int, root, config: ServiceConfig) -> None:
        self.root = root
        self.config = config
        self.cores = [WorkerCore(i, root, config) for i in range(num_workers)]
        self._reports: List[WorkerReport] = []

    def submit(self, shard: int, seq: int, t_send: float,
               t_mono: Optional[float],
               items: Sequence[Tuple[int, str, int, bytes]]) -> bool:
        core = self.cores[shard]
        if core is None:
            # Dead worker: the failed submit *is* the exit sentinel the
            # supervisor keys off in this backend.
            return False
        self._reports.append(core.ingest_handoff(t_send, items, seq=seq))
        return True

    def get_report(self, timeout: float = 0.0) -> Optional[WorkerReport]:
        return self._reports.pop(0) if self._reports else None

    def worker_metrics(self) -> List[Dict[str, float]]:
        return [core.metrics() for core in self.cores]

    def kill(self, shard: int) -> None:
        """Simulate a worker crash: drop the core on the floor without
        snapshot or close (its durable store is the only survivor)."""
        self.cores[shard] = None

    def dead_workers(self) -> List[int]:
        return [i for i, core in enumerate(self.cores) if core is None]

    def restart(self, shard: int, min_capacity: int = 0) -> None:
        """Rebuild a killed core from its durable store (deterministic
        inline twin of the process backend's respawn)."""
        if self.root is None:
            raise RuntimeError("cannot restart a worker without a "
                               "durable root")
        self.cores[shard] = WorkerCore(shard, self.root, self.config,
                                       recover=True)

    def close(self) -> List[Dict[str, float]]:
        metrics = [core.metrics() if core is not None else {}
                   for core in self.cores]
        for core in self.cores:
            if core is not None:
                core.close()
        return metrics


def _worker_main(index: int, root, config: ServiceConfig,
                 in_q: "mp.Queue", out_q: "mp.Queue",
                 recover: bool = False) -> None:
    # Child-process body: coverage tooling cannot observe it, and its
    # logic is the already-tested WorkerCore -- this loop is transport.
    # Latency math uses the monotonic clock only (CLOCK_MONOTONIC is
    # system-wide, so the frontend's t_mono stamp is comparable here);
    # admission and marker times come from t_send, never a local read.
    core = WorkerCore(index, root, config, recover=recover)  # pragma: no cover
    while True:  # pragma: no cover
        msg = in_q.get()
        if msg[0] == "b":
            report = core.ingest_handoff(msg[2], msg[4], seq=msg[1],
                                         t_mono=msg[3])
            out_q.put(("r", report))
        elif msg[0] == "stop":
            core.close()
            out_q.put(("x", index, core.metrics()))
            return


class _ProcessBackend:
    """One OS process per shard worker, fed over bounded
    ``multiprocessing`` queues (one shared completion queue).  A full
    feed queue refuses the submit -- the frontend keeps the handoff
    buffered and raises SUPPRESS, so overload degrades explicitly at the
    network edge instead of growing an unbounded pickle backlog.

    ``dead_workers``/``restart`` are the supervisor surface: a dead
    child (SIGKILL, OOM, crash -- ``is_alive()`` is the exit sentinel)
    is respawned with ``recover=True`` on a **fresh** feed queue.  The
    old queue's contents are deliberately discarded: the frontend's
    in-flight ledger is the source of truth, and it resubmits every
    unacked handoff in sequence order with the original timestamps."""

    mode = "process"

    def __init__(self, num_workers: int, root, config: ServiceConfig,
                 queue_max_handoffs: int = 16) -> None:
        self.root = root
        self.config = config
        self.queue_max_handoffs = queue_max_handoffs
        ctx = mp.get_context()
        self.in_qs = [ctx.Queue(maxsize=queue_max_handoffs)
                      for _ in range(num_workers)]
        self.out_q = ctx.Queue()
        self.procs = [
            ctx.Process(target=_worker_main,
                        args=(i, root, config, self.in_qs[i], self.out_q),
                        daemon=True)
            for i in range(num_workers)
        ]
        for proc in self.procs:
            proc.start()
        self._final: Dict[int, Dict[str, float]] = {}
        self._stopping = False

    def submit(self, shard: int, seq: int, t_send: float,
               t_mono: Optional[float],
               items: Sequence[Tuple[int, str, int, bytes]]) -> bool:
        try:
            # One pickle per drained handoff batch, never per event.
            self.in_qs[shard].put_nowait(
                ("b", seq, t_send, t_mono, list(items)))
            return True
        except queue_mod.Full:
            return False

    def get_report(self, timeout: float = 0.0) -> Optional[WorkerReport]:
        try:
            msg = (self.out_q.get(timeout=timeout) if timeout
                   else self.out_q.get_nowait())
        except queue_mod.Empty:
            return None
        if msg[0] == "x":
            self._final[msg[1]] = msg[2]
            return None
        return msg[1]

    def kill(self, shard: int) -> None:
        """SIGKILL one worker -- the crash the per-worker durable store
        exists for."""
        self.procs[shard].kill()
        self.procs[shard].join()

    def dead_workers(self) -> List[int]:
        if self._stopping:
            return []
        return [i for i, proc in enumerate(self.procs)
                if not proc.is_alive() and proc.exitcode is not None]

    def restart(self, shard: int, min_capacity: int = 0) -> None:
        """Respawn a dead shard worker in recover mode on a fresh feed
        queue (sized to hold at least the frontend's pending
        resubmissions)."""
        dead = self.procs[shard]
        if dead.is_alive():  # pragma: no cover - caller checks first
            raise RuntimeError(f"worker {shard} is still alive")
        dead.join()
        old_q = self.in_qs[shard]
        old_q.close()
        old_q.cancel_join_thread()
        ctx = mp.get_context()
        self.in_qs[shard] = ctx.Queue(
            maxsize=max(self.queue_max_handoffs, min_capacity))
        self.procs[shard] = ctx.Process(
            target=_worker_main,
            args=(shard, self.root, self.config, self.in_qs[shard],
                  self.out_q, True),
            daemon=True)
        self.procs[shard].start()

    def close(self) -> List[Dict[str, float]]:
        self._stopping = True
        expected = 0
        for shard, proc in enumerate(self.procs):
            if proc.is_alive():
                self.in_qs[shard].put(("stop",))
                expected += 1
        deadline = time.monotonic() + 30.0
        while len(self._final) < expected and time.monotonic() < deadline:
            try:
                msg = self.out_q.get(timeout=0.2)
            except queue_mod.Empty:  # pragma: no cover - slow shutdown
                continue
            if msg[0] == "x":
                self._final[msg[1]] = msg[2]
        for proc in self.procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - hung worker backstop
                proc.kill()
        return [self._final.get(i, {}) for i in range(len(self.procs))]


def shard_for_client(client_id: str, num_workers: int) -> int:
    """Connection-level shard key: CRC-32 of the client id (process-
    stable, like every shard key in :mod:`repro.soc.shard`)."""
    return _stable_hash(client_id) % num_workers


# ----------------------------------------------------------------------
# The asyncio frontend
# ----------------------------------------------------------------------

@dataclass
class _Conn:
    """Frontend-side connection state.

    ``suppressed`` is the *effective* state last written to the wire; it
    is the OR of the shard-wide backpressure signal and this
    connection's own ``quota_suppressed`` (token bucket exhausted)."""

    conn_id: int
    client_id: str
    shard: int
    writer: asyncio.StreamWriter
    suppressed: bool = False
    batches: int = 0
    events_offered: int = 0
    events_accepted: int = 0
    bucket: Optional[TokenBucket] = None
    quota_suppressed: bool = False
    quota_refused: int = 0


class IngestService:
    """The ingest tier behind the TCP server: shard buffers, worker
    backend, flow accounting, and the SUPPRESS/RESUME state machine.

    Usable without any network at all (the differential and recovery
    tests drive :meth:`route` / :meth:`flush` / :meth:`poll_completions`
    directly); :class:`IngestServer` adds the asyncio transport on top.

    ``suppress_after`` / ``resume_below`` bound the *outstanding
    handoffs* per shard -- the frontend's own watermark on top of the
    worker-sampled queue-congestion signal; crossing either raises
    SUPPRESS to every connection on the shard.

    Three hardening layers ride on top of the plain service:

    * **Authenticated sessions** -- give the :class:`ServiceConfig` a
      ``fleet_key`` and the server runs a CMAC challenge-response
      handshake, and every BATCH must carry a :func:`batch_tag` trailer
      the *owning worker* verifies (the frontend still never decodes
      events).
    * **Per-client quotas** -- ``quota_bytes_per_s`` arms a
      byte-denominated :class:`~repro.soc.ingest.TokenBucket` per
      connection: over-quota batches are hard-refused at
      :meth:`route` (REFUSED frame, credit returned, counted in
      ``quota_refused``) and the connection gets a *targeted* SUPPRESS
      until its bucket refills.
    * **Worker auto-restart** -- with a durable ``root``,
      :meth:`check_workers` respawns dead workers (snapshot +
      log-suffix replay) and resubmits every unacked handoff from the
      in-flight ledger in sequence order; the per-handoff journal makes
      the replay exactly-once, so clients never lose an ACK for an
      admitted batch.
    """

    def __init__(self, num_workers: int = 1, *, mode: str = "process",
                 root=None, config: Optional[ServiceConfig] = None,
                 handoff_batch: int = 64, queue_max_handoffs: int = 16,
                 suppress_after: int = 8, resume_below: int = 2,
                 initial_credits: int = 8,
                 quota_bytes_per_s: Optional[float] = None,
                 quota_burst_bytes: Optional[float] = None,
                 quota_disconnect_after: Optional[int] = None,
                 supervise: Optional[bool] = None,
                 handshake_timeout_s: float = 5.0,
                 max_preauth_bytes: int = 4096,
                 max_half_open: int = 1024,
                 clock: Callable[[], float] = time.time,
                 mono_clock: Callable[[], float] = time.monotonic) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if mode not in ("process", "inline"):
            raise ValueError("mode must be 'process' or 'inline'")
        self.num_workers = num_workers
        self.mode = mode
        self.config = config or ServiceConfig()
        self.handoff_batch = handoff_batch
        self.suppress_after = suppress_after
        self.resume_below = resume_below
        self.initial_credits = initial_credits
        self.quota_bytes_per_s = quota_bytes_per_s
        self.quota_burst_bytes = (
            quota_burst_bytes if quota_burst_bytes is not None
            else (4.0 * quota_bytes_per_s
                  if quota_bytes_per_s is not None else None))
        self.quota_disconnect_after = quota_disconnect_after
        # Auto-restart needs a durable store to replay from; default the
        # supervisor on exactly when one exists.
        self.supervise = (root is not None) if supervise is None else supervise
        self.handshake_timeout_s = handshake_timeout_s
        self.max_preauth_bytes = max_preauth_bytes
        self.max_half_open = max_half_open
        # ``clock`` stays wall-clock: workers compare *event* timestamps
        # against t_send for lateness admission.  Deadlines, ACK latency
        # and quota buckets use ``mono_clock`` so a wall-clock step never
        # stalls a drain or starves a client.
        self.clock = clock
        self.mono_clock = mono_clock
        self.backend = (
            _InlineBackend(num_workers, root, self.config)
            if mode == "inline" else
            _ProcessBackend(num_workers, root, self.config,
                            queue_max_handoffs=queue_max_handoffs))
        self._buffers: List[List[Tuple[int, str, int, bytes]]] = [
            [] for _ in range(num_workers)]
        # In-flight ledger: per shard, seq -> (t_send, t_mono, items) for
        # every submitted-but-unreported handoff.  The supervisor replays
        # it (original timestamps, sequence order) after a restart; a
        # report pops its entry, and a report whose entry is already gone
        # is a duplicate of replayed work and is dropped whole.
        self._inflight: List[Dict[int, Tuple[float, Optional[float],
                                             List[Tuple[int, str, int,
                                                        bytes]]]]] = [
            {} for _ in range(num_workers)]
        # Handoff sequence numbers are 1-based so seq N == the worker's
        # pump_no after applying it -- the invariant replay dedup rides.
        self._next_seq = [1] * num_workers
        self._outstanding = [0] * num_workers
        self._congested = [False] * num_workers
        self._suppressed = [False] * num_workers
        self.conns: Dict[int, _Conn] = {}
        self._shard_conns: List[Dict[int, _Conn]] = [
            {} for _ in range(num_workers)]
        self._next_conn = 0
        # Flow totals (frontend truth; per-worker truth comes from
        # worker_metrics -- the service conservation test ties them).
        self.batches_routed = 0
        self.batches_acked = 0
        self.events_acked = 0
        self.events_refused = 0
        self.handoffs_submitted = 0
        self.submit_refusals = 0
        self.suppress_transitions = 0
        self.quota_refused = 0
        self.quota_refused_bytes = 0
        self.quota_disconnects = 0
        self.batches_cmac_rejected = 0
        self.batches_forgotten = 0
        self.worker_restarts = 0
        self.duplicate_reports = 0
        self.handoffs_resubmitted = 0
        self.auth_failures = 0
        self.handshake_timeouts = 0
        self.preauth_overflows = 0
        self.half_open = 0
        self.half_open_rejected = 0
        self.protocol_errors = 0
        self.closed = False
        self._final_metrics: Optional[List[Dict[str, float]]] = None

    # -- connection lifecycle ------------------------------------------
    def open_conn(self, client_id: str,
                  writer: Optional[asyncio.StreamWriter] = None) -> _Conn:
        conn = _Conn(self._next_conn, client_id,
                     shard_for_client(client_id, self.num_workers), writer)
        self._next_conn += 1
        self.conns[conn.conn_id] = conn
        self._shard_conns[conn.shard][conn.conn_id] = conn
        conn.suppressed = self._suppressed[conn.shard]
        if self.quota_bytes_per_s is not None:
            conn.bucket = TokenBucket(self.quota_bytes_per_s,
                                      self.quota_burst_bytes,
                                      now=self.mono_clock())
        return conn

    def close_conn(self, conn_id: int) -> None:
        conn = self.conns.pop(conn_id, None)
        if conn is not None:
            self._shard_conns[conn.shard].pop(conn_id, None)

    # -- ingest path ----------------------------------------------------
    def route(self, conn: _Conn, payload: bytes) -> bool:
        """Buffer one raw BATCH payload for the connection's shard; the
        batch id is scanned out, the events are not decoded here.

        Returns ``False`` when the connection's token bucket refuses the
        batch (over quota): the payload is *not* buffered, the refusal
        is counted, and the connection is put under targeted SUPPRESS
        until :meth:`_refresh_quotas` sees its bucket half-full again.
        A malformed payload raises
        :class:`~repro.soc.store.CorruptRecord` -- the caller drops the
        connection through its one deliberate protocol-fault path."""
        batch_id = batch_id_of(payload)
        if conn.bucket is not None and not conn.bucket.try_take(
                len(payload), self.mono_clock()):
            self.quota_refused += 1
            self.quota_refused_bytes += len(payload)
            conn.quota_refused += 1
            if not conn.quota_suppressed:
                conn.quota_suppressed = True
                self._sync_conn_suppression(conn)
            return False
        self._buffers[conn.shard].append(
            (conn.conn_id, conn.client_id, batch_id, payload))
        conn.batches += 1
        self.batches_routed += 1
        return True

    def buffered(self, shard: Optional[int] = None) -> int:
        if shard is not None:
            return len(self._buffers[shard])
        return sum(len(b) for b in self._buffers)

    def inflight_batches(self, shard: Optional[int] = None) -> int:
        """Batches inside submitted-but-unreported handoffs (the
        in-flight ledger) -- the third term of the service conservation
        identity."""
        shards = range(self.num_workers) if shard is None else (shard,)
        return sum(len(items)
                   for index in shards
                   for (_, _, items) in self._inflight[index].values())

    def flush(self, shard: Optional[int] = None) -> int:
        """Drain non-empty shard buffers into worker handoffs (one
        backend submit per drained buffer).  A refused submit (full feed
        queue) leaves the buffer intact and trips SUPPRESS.  Returns the
        number of handoffs submitted."""
        shards = range(self.num_workers) if shard is None else (shard,)
        submitted = 0
        t_send = self.clock()
        t_mono = self.mono_clock()
        for index in shards:
            buf = self._buffers[index]
            if not buf:
                continue
            seq = self._next_seq[index]
            if self.backend.submit(index, seq, t_send, t_mono, buf):
                self._inflight[index][seq] = (t_send, t_mono, buf)
                self._next_seq[index] = seq + 1
                self._buffers[index] = []
                self._outstanding[index] += 1
                self.handoffs_submitted += 1
                submitted += 1
            else:
                self.submit_refusals += 1
            self._update_suppression(index)
        self._refresh_quotas(t_mono)
        return submitted

    def maybe_flush(self, shard: int) -> int:
        """Flush one shard iff its buffer reached ``handoff_batch``."""
        if len(self._buffers[shard]) >= self.handoff_batch:
            return self.flush(shard)
        return 0

    def apply_report(self, report: WorkerReport
                     ) -> List[Tuple[_Conn, int, int, int]]:
        """Account one finished handoff; returns per-batch ack work
        items ``(conn, batch_id, offered, accepted)`` for live
        connections (the caller sends the ACK frames -- or drops the
        connection where ``accepted < 0`` flags an undecodable
        (``-1``) or tampered (``-2``) payload).

        A report whose ledger entry is already gone is a duplicate --
        a pre-crash report surfacing after the supervisor resubmitted
        the same handoff to the restarted worker -- and is dropped
        whole: its batches were (or will be) accounted exactly once by
        the report that popped the entry."""
        seq = report.handoff_seq
        if seq >= 0 and self._inflight[report.shard].pop(seq, None) is None:
            self.duplicate_reports += 1
            return []
        out: List[Tuple[_Conn, int, int, int]] = []
        self._outstanding[report.shard] -= 1
        self._congested[report.shard] = report.congested
        for conn_id, batch_id, offered, accepted in report.acks:
            self.batches_acked += 1
            conn = self.conns.get(conn_id)
            if accepted >= 0:
                self.events_acked += accepted
                self.events_refused += offered - accepted
            elif accepted == -2:
                self.batches_cmac_rejected += 1
            if conn is not None:
                out.append((conn, batch_id, offered, accepted))
        self._update_suppression(report.shard)
        return out

    def poll_completions(self, timeout: float = 0.0
                         ) -> List[Tuple[_Conn, int, int, int]]:
        """Collect every finished handoff via :meth:`apply_report`."""
        out: List[Tuple[_Conn, int, int, int]] = []
        while True:
            report = self.backend.get_report(timeout=timeout)
            timeout = 0.0  # only the first get may block
            if report is None:
                break
            out.extend(self.apply_report(report))
        return out

    # -- backpressure ---------------------------------------------------
    def _sync_conn_suppression(self, conn: _Conn) -> None:
        """Reconcile one connection's wire-visible SUPPRESS state with
        its *effective* state (shard-wide backpressure OR its own quota
        suppression), writing a frame only on a transition and only to a
        transport that is still open -- a connection that raced its own
        close against a shard transition must not be written to."""
        want = self._suppressed[conn.shard] or conn.quota_suppressed
        if want == conn.suppressed:
            return
        conn.suppressed = want
        if conn.writer is not None and not conn.writer.is_closing():
            conn.writer.write(frame_payload(
                encode_suppress() if want else encode_resume()))

    def _update_suppression(self, shard: int) -> None:
        """Recompute the shard's SUPPRESS state from the outstanding-
        handoff watermark OR the worker's own congestion signal."""
        if self._suppressed[shard]:
            want = (self._outstanding[shard] >= self.resume_below
                    or len(self._buffers[shard]) >= self.handoff_batch
                    or self._congested[shard])
        else:
            want = (self._outstanding[shard] >= self.suppress_after
                    or len(self._buffers[shard])
                    >= self.handoff_batch * self.suppress_after
                    or self._congested[shard])
        if want != self._suppressed[shard]:
            self._suppressed[shard] = want
            self.suppress_transitions += 1
            for conn in self._shard_conns[shard].values():
                self._sync_conn_suppression(conn)

    def _refresh_quotas(self, now: Optional[float] = None) -> None:
        """Lift targeted SUPPRESS from quota-throttled connections whose
        bucket has refilled to half its burst (hysteresis: resuming at
        the refusal threshold would flap on every refill tick)."""
        if self.quota_bytes_per_s is None:
            return
        if now is None:
            now = self.mono_clock()
        for conn in self.conns.values():
            if (conn.quota_suppressed and conn.bucket is not None
                    and conn.bucket.level(now) >= conn.bucket.burst / 2.0):
                conn.quota_suppressed = False
                self._sync_conn_suppression(conn)

    def suppressed(self, shard: int) -> bool:
        return self._suppressed[shard]

    # -- worker failure: lossy kill vs supervised restart ---------------
    def kill_worker(self, shard: int) -> None:
        """Crash one shard worker (SIGKILL in process mode, dropped
        core inline) and *forget* its in-flight work -- the lossy
        operator-level path the kill-a-worker recovery tests drive.
        Anything buffered or in flight for the shard is lost unacked
        (counted in ``batches_forgotten``): the client-side credit
        ledger sees exactly which batches died.  Compare
        :meth:`sigkill_worker`, which keeps the ledger so the
        supervisor can replay."""
        self.backend.kill(shard)
        self.batches_forgotten += (len(self._buffers[shard])
                                   + self.inflight_batches(shard))
        self._buffers[shard] = []
        self._inflight[shard].clear()
        self._outstanding[shard] = 0
        # A crash empties the shard's pipeline: recompute SUPPRESS now,
        # or surviving connections stay muted until unrelated traffic
        # next touches the shard.
        self._congested[shard] = False
        self._update_suppression(shard)

    def sigkill_worker(self, shard: int) -> None:
        """Crash one shard worker *without* forgetting its work: the
        in-flight ledger and shard buffer survive, so
        :meth:`check_workers` can restart the worker and replay every
        unacked handoff -- the MTTR / zero-ack-loss path."""
        self.backend.kill(shard)

    def check_workers(self) -> int:
        """Supervisor tick: detect dead workers (exit sentinel), respawn
        each in recover mode (snapshot + log-suffix replay of its
        durable store), and resubmit its unacked handoffs from the
        in-flight ledger in sequence order with their *original*
        timestamps -- replay must be deterministic, not re-stamped.
        Returns the number of workers restarted."""
        if not self.supervise or self.closed:
            return 0
        restarted = 0
        for shard in self.backend.dead_workers():
            pending = sorted(self._inflight[shard].items())
            self.backend.restart(shard, min_capacity=len(pending) + 1)
            self.worker_restarts += 1
            restarted += 1
            self._outstanding[shard] = 0
            self._congested[shard] = False
            for seq, (t_send, t_mono, items) in pending:
                if self.backend.submit(shard, seq, t_send, t_mono, items):
                    self._outstanding[shard] += 1
                    self.handoffs_resubmitted += 1
                else:  # pragma: no cover - queue sized for all pending
                    self.submit_refusals += 1
            self._update_suppression(shard)
        return restarted

    # -- shutdown / observability --------------------------------------
    def drain_and_close(self, poll_interval_s: float = 0.01,
                        timeout_s: float = 30.0) -> List[Dict[str, float]]:
        """Flush every buffer, wait for all outstanding handoffs, then
        stop the workers; returns their final metrics dicts.  The
        deadline is monotonic -- a wall-clock step (NTP slew, operator
        `date`) must never cut a drain short or hang it."""
        if self.closed:
            return self._final_metrics or []
        deadline = self.mono_clock() + timeout_s
        while (self.buffered() or any(x > 0 for x in self._outstanding)):
            self.check_workers()
            self.flush()
            self.poll_completions(timeout=poll_interval_s)
            if self.mono_clock() > deadline:  # pragma: no cover - backstop
                break
        self._final_metrics = self.backend.close()
        self.closed = True
        return self._final_metrics

    def audit_conservation(self) -> None:
        """Assert the service batch-flow identity (raises
        :class:`~repro.soc.shard.ConservationError` on violation)."""
        ConservationAudit().check_service(self)

    def worker_metrics(self) -> List[Dict[str, float]]:
        """Final per-worker metrics (after :meth:`drain_and_close`); the
        inline backend can also report live."""
        if self._final_metrics is not None:
            return self._final_metrics
        if isinstance(self.backend, _InlineBackend):
            return self.backend.worker_metrics()
        raise RuntimeError("process-mode metrics are collected at "
                           "drain_and_close()")

    def metrics(self) -> Dict[str, float]:
        """Frontend flow counters (live at any time)."""
        return {
            "batches_routed": float(self.batches_routed),
            "batches_acked": float(self.batches_acked),
            "events_acked": float(self.events_acked),
            "events_refused": float(self.events_refused),
            "handoffs_submitted": float(self.handoffs_submitted),
            "submit_refusals": float(self.submit_refusals),
            "suppress_transitions": float(self.suppress_transitions),
            "buffered": float(self.buffered()),
            "outstanding": float(sum(self._outstanding)),
            "inflight_batches": float(self.inflight_batches()),
            "connections": float(len(self.conns)),
            "quota_refused": float(self.quota_refused),
            "quota_refused_bytes": float(self.quota_refused_bytes),
            "quota_disconnects": float(self.quota_disconnects),
            "batches_cmac_rejected": float(self.batches_cmac_rejected),
            "batches_forgotten": float(self.batches_forgotten),
            "worker_restarts": float(self.worker_restarts),
            "duplicate_reports": float(self.duplicate_reports),
            "handoffs_resubmitted": float(self.handoffs_resubmitted),
            "auth_failures": float(self.auth_failures),
            "handshake_timeouts": float(self.handshake_timeouts),
            "preauth_overflows": float(self.preauth_overflows),
            "half_open_rejected": float(self.half_open_rejected),
            "protocol_errors": float(self.protocol_errors),
        }


class IngestServer:
    """The asyncio TCP frontend over an :class:`IngestService`.

    One reader coroutine per connection (HELLO -> WELCOME, then BATCH
    frames routed to shard buffers); one pump task flushing buffers
    every ``flush_interval_s`` and fanning completed handoffs back out
    as ACK frames.  In process mode a collector thread blocks on the
    workers' completion queue and wakes the loop, so ACK latency is not
    quantized to the flush interval.
    """

    def __init__(self, service: IngestService, host: str = "127.0.0.1",
                 port: int = 0, flush_interval_s: float = 0.002) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.flush_interval_s = flush_interval_s
        self._server: Optional[asyncio.AbstractServer] = None
        self._pump_task: Optional[asyncio.Task] = None
        self._collector: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._report_wakeup: Optional[asyncio.Event] = None
        self._conn_writers: set = set()

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_conn, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._report_wakeup = asyncio.Event()
        self._pump_task = asyncio.create_task(self._pump())
        if self.service.mode == "process":
            loop = asyncio.get_running_loop()
            self._collector = threading.Thread(
                target=self._collect, args=(loop,), daemon=True)
            self._collector.start()

    def _collect(self, loop: asyncio.AbstractEventLoop) -> None:
        """Blocking completion-queue reader (thread): parks reports on
        the service and nudges the loop's pump task."""
        backend = self.service.backend
        while not self._stop.is_set():
            report = backend.get_report(timeout=0.05)
            if report is not None:
                loop.call_soon_threadsafe(self._ack_report, report)

    def _ack_report(self, report: WorkerReport) -> None:
        self._write_acks(self.service.apply_report(report))

    def _write_acks(self, items: List[Tuple[_Conn, int, int, int]]) -> None:
        service = self.service
        for conn, batch_id, offered, accepted in items:
            if accepted < 0:
                # Undecodable (-1) or tampered (-2) payload: protocol
                # fault, drop the client.
                conn.writer.close()
                service.close_conn(conn.conn_id)
                continue
            conn.events_offered += offered
            conn.events_accepted += accepted
            if not conn.writer.is_closing():
                conn.writer.write(frame_payload(
                    encode_ack(batch_id, accepted, 1)))

    async def _pump(self) -> None:
        service = self.service
        while True:
            await asyncio.sleep(self.flush_interval_s)
            service.check_workers()
            service.flush()
            if service.mode == "inline":
                self._write_acks(service.poll_completions())

    async def _handshake(self, reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter,
                         decoder: FrameStreamDecoder
                         ) -> Tuple[Optional[_Conn], List[bytes]]:
        """Run the pre-session handshake under its limits (read
        deadline, pre-auth byte cap): plain ``HELLO -> WELCOME``, or --
        when the service holds a fleet key -- ``HELLO -> CHALLENGE ->
        AUTH -> WELCOME`` with a CMAC challenge-response proof.  Returns
        ``(conn, leftover_payloads)``; ``conn is None`` means refuse the
        connection (already counted)."""
        service = self.service
        fleet_key = service.config.fleet_key
        deadline = service.mono_clock() + service.handshake_timeout_s
        client_id: Optional[str] = None
        nonce = b""
        pending: List[bytes] = []
        while True:
            while pending:
                payload = pending.pop(0)
                try:
                    msg = decode_message(payload)
                except CorruptRecord:
                    service.protocol_errors += 1
                    return None, []
                if msg[0] == _T_HELLO and client_id is None:
                    client_id = msg[1]
                    if fleet_key is None:
                        conn = service.open_conn(client_id, writer)
                        writer.write(frame_payload(encode_welcome(
                            conn.shard, service.num_workers,
                            service.initial_credits)))
                        if conn.suppressed:
                            writer.write(frame_payload(encode_suppress()))
                        return conn, pending
                    nonce = os.urandom(16)
                    writer.write(frame_payload(encode_challenge(nonce)))
                elif msg[0] == _T_AUTH and client_id is not None:
                    key = derive_session_key(fleet_key, client_id)
                    try:
                        tag = bytes.fromhex(msg[1])
                    except ValueError:
                        tag = b""
                    if len(tag) != BATCH_TAG_LEN or not cmac_verify(
                            key, AUTH_CONTEXT + b"|"
                            + client_id.encode("utf-8") + b"|" + nonce, tag):
                        service.auth_failures += 1
                        return None, []
                    conn = service.open_conn(client_id, writer)
                    writer.write(frame_payload(encode_welcome(
                        conn.shard, service.num_workers,
                        service.initial_credits)))
                    if conn.suppressed:
                        writer.write(frame_payload(encode_suppress()))
                    return conn, pending
                else:
                    # Anything else pre-session (BATCH before HELLO,
                    # duplicate HELLO, AUTH without challenge) is a
                    # protocol fault.
                    service.protocol_errors += 1
                    return None, []
            try:
                data = await asyncio.wait_for(
                    reader.read(1 << 16),
                    timeout=deadline - service.mono_clock())
            except (asyncio.TimeoutError, ValueError):
                service.handshake_timeouts += 1
                return None, []
            if not data:
                return None, []
            try:
                pending = decoder.feed(data)
            except CorruptRecord:
                service.protocol_errors += 1
                return None, []
            if decoder.bytes_fed > service.max_preauth_bytes:
                service.preauth_overflows += 1
                return None, []

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        service = self.service
        if service.half_open >= service.max_half_open:
            # Too many connections parked pre-auth: refuse at accept,
            # before this one can hold handshake state open.
            service.half_open_rejected += 1
            writer.close()
            return
        decoder = FrameStreamDecoder()
        service.half_open += 1
        self._conn_writers.add(writer)
        try:
            try:
                conn, pending = await self._handshake(reader, writer,
                                                      decoder)
            finally:
                service.half_open -= 1
            if conn is None:
                writer.close()
                return
            await self._conn_loop(service, conn, reader, writer, decoder,
                                  pending)
        finally:
            self._conn_writers.discard(writer)

    async def _conn_loop(self, service, conn, reader, writer, decoder,
                         pending) -> None:
        try:
            while True:
                for payload in pending:
                    if payload[:4] == b'["e"':
                        # route() raises CorruptRecord on a malformed
                        # BATCH payload -- same deliberate drop path as
                        # an undecodable frame stream.
                        if service.route(conn, payload):
                            service.maybe_flush(conn.shard)
                            continue
                        # Over quota: hard-refuse, return the credit so
                        # the client's ledger stays live.
                        writer.write(frame_payload(
                            encode_refused(batch_id_of(payload), 1)))
                        threshold = service.quota_disconnect_after
                        if (threshold is not None
                                and conn.quota_refused >= threshold):
                            service.quota_disconnects += 1
                            return
                        continue
                    msg = decode_message(payload)
                    if msg[0] == _T_BYE:
                        writer.write(frame_payload(encode_bye()))
                        await writer.drain()
                        return
                data = await reader.read(1 << 16)
                if not data:
                    break
                pending = decoder.feed(data)
        except CorruptRecord:
            # The one deliberate protocol-fault path: undecodable frame
            # stream OR malformed BATCH payload -- count it, drop them.
            service.protocol_errors += 1
        finally:
            service.close_conn(conn.conn_id)
            writer.close()

    async def stop(self) -> List[Dict[str, float]]:
        """Quiesce: flush + await outstanding handoffs, stop workers,
        close the listener.  Returns final per-worker metrics."""
        if self._pump_task is not None:
            self._pump_task.cancel()
        self._stop.set()
        if self._collector is not None:
            self._collector.join(timeout=2.0)
        # Drain remaining completions so every acked batch is accounted.
        metrics = await asyncio.get_running_loop().run_in_executor(
            None, self.service.drain_and_close)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Close connections the caller left open so their handler tasks
        # exit via EOF instead of being cancelled at loop teardown.
        for writer in list(self._conn_writers):
            writer.close()
        await asyncio.sleep(0)
        return metrics


async def serve(service: IngestService, host: str = "127.0.0.1",
                port: int = 0, flush_interval_s: float = 0.002
                ) -> IngestServer:
    """Start an :class:`IngestServer` for ``service``; returns it with
    ``.port`` resolved (port 0 picks a free one)."""
    server = IngestServer(service, host, port,
                          flush_interval_s=flush_interval_s)
    await server.start()
    return server


# ----------------------------------------------------------------------
# The vehicle-side client
# ----------------------------------------------------------------------

class VehicleClient:
    """Async vehicle uplink with credit-based flow control.

    ``send_events`` consumes one credit per batch; credits return with
    ACKs (each ACK's round trip is recorded -- the p99 E19 publishes).
    While the server holds this connection SUPPRESSED, ASIL-A telemetry
    is shed at the source and counted (``suppressed_at_source``),
    mirroring :class:`~repro.soc.fleet.FleetWorkloadGenerator`; higher
    severities still go through -- backpressure never mutes actionable
    security telemetry.
    """

    def __init__(self, client_id: str, host: str = "127.0.0.1",
                 port: int = 0,
                 session_key: Optional[bytes] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.client_id = client_id
        self.host = host
        self.port = port
        self.session_key = session_key
        self.clock = clock
        self.shard = -1
        self.credits = 0
        self.suppressed = False
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._decoder = FrameStreamDecoder()
        self._next_batch = 0
        self._pending: Dict[int, Tuple[float, int]] = {}
        self._credit_evt = asyncio.Event()
        self._ack_evt = asyncio.Event()
        self.batches_sent = 0
        self.events_sent = 0
        self.events_accepted = 0
        self.suppressed_at_source = 0
        self.batches_refused = 0
        self.events_refused_quota = 0
        self.rtts_s: List[float] = []
        self.closed = False

    def seal(self, payload: bytes) -> bytes:
        """Append this session's :func:`batch_tag` trailer to an encoded
        BATCH payload (no-op without a session key)."""
        if self.session_key is None:
            return payload
        return seal_payload(self.session_key, self.client_id, payload)

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port)
        self._writer.write(frame_payload(encode_hello(self.client_id)))
        # The handshake (CHALLENGE? -> WELCOME) completes before any
        # ACK/SUPPRESS can arrive; read it synchronously.
        pending: List[bytes] = []
        while True:
            while pending:
                msg = decode_message(pending.pop(0))
                if msg[0] == _T_CHALLENGE:
                    if self.session_key is None:
                        raise CorruptRecord(
                            "server requires authentication but this "
                            "client has no session key")
                    tag = auth_tag(self.session_key, self.client_id,
                                   bytes.fromhex(msg[1]))
                    self._writer.write(frame_payload(encode_auth(tag)))
                    continue
                if msg[0] != _T_WELCOME:
                    raise CorruptRecord("expected WELCOME")
                self.shard, _, self.credits = msg[1], msg[2], msg[3]
                if self.credits > 0:
                    self._credit_evt.set()
                for extra in pending:
                    self._on_payload(extra)
                self._reader_task = asyncio.create_task(self._read_loop())
                return
            data = await self._reader.read(1 << 16)
            if not data:
                raise ConnectionError("server closed during handshake")
            pending = self._decoder.feed(data)

    async def _read_loop(self) -> None:
        try:
            while True:
                data = await self._reader.read(1 << 16)
                if not data:
                    break
                for payload in self._decoder.feed(data):
                    self._on_payload(payload)
        except (asyncio.CancelledError, ConnectionError):
            pass
        finally:
            self.closed = True
            self._ack_evt.set()
            self._credit_evt.set()

    def _on_payload(self, payload: bytes) -> None:
        msg = decode_message(payload)
        if msg[0] == _T_ACK:
            _, batch_id, accepted, credits = msg
            sent = self._pending.pop(batch_id, None)
            if sent is not None:
                self.rtts_s.append(self.clock() - sent[0])
                self.events_accepted += accepted
            self.credits += credits
            if self.credits > 0:
                self._credit_evt.set()
            self._ack_evt.set()
        elif msg[0] == _T_REFUSED:
            # Quota hard-refusal: the batch was NOT admitted; reclaim
            # the credit and count the loss explicitly.
            _, batch_id, credits = msg
            sent = self._pending.pop(batch_id, None)
            if sent is not None:
                self.batches_refused += 1
                self.events_refused_quota += sent[1]
            self.credits += credits
            if self.credits > 0:
                self._credit_evt.set()
            self._ack_evt.set()
        elif msg[0] == _T_SUPPRESS:
            self.suppressed = True
        elif msg[0] == _T_RESUME:
            self.suppressed = False

    async def send_events(self, events: Sequence[SecurityEvent]
                          ) -> Optional[int]:
        """Send one batch (one credit).  Under suppression, ASIL-A
        events are shed and counted; returns the batch id, or ``None``
        if suppression shed the whole batch."""
        if self.suppressed:
            kept = [e for e in events if e.severity > Asil.A]
            self.suppressed_at_source += len(events) - len(kept)
            if not kept:
                return None
            events = kept
        while self.credits <= 0 and not self.closed:
            self._credit_evt.clear()
            await self._credit_evt.wait()
        if self.closed or self._writer.is_closing():
            raise ConnectionError("connection closed")
        self.credits -= 1
        batch_id = self._next_batch
        self._next_batch += 1
        self._pending[batch_id] = (self.clock(), len(events))
        self._writer.write(frame_payload(
            self.seal(encode_batch(batch_id, events))))
        self.batches_sent += 1
        self.events_sent += len(events)
        return batch_id

    async def send_payload(self, payload: bytes, n_events: int = 0) -> int:
        """Send a pre-encoded BATCH payload (the zero-copy path the
        benchmark uses: serialize once, send many).  The payload's batch
        id must be fresh for this connection, and in authenticated mode
        the caller pre-seals it (:meth:`seal` / :func:`seal_payload`);
        ``n_events`` feeds the client's sent-events counter (the payload
        is deliberately not re-parsed here)."""
        while self.credits <= 0 and not self.closed:
            self._credit_evt.clear()
            await self._credit_evt.wait()
        if self.closed or self._writer.is_closing():
            raise ConnectionError("connection closed")
        self.credits -= 1
        batch_id = batch_id_of(payload)
        self._pending[batch_id] = (self.clock(), n_events)
        self._writer.write(frame_payload(payload))
        self.batches_sent += 1
        self.events_sent += n_events
        return batch_id

    async def drain(self) -> None:
        """Wait until every sent batch has been ACKed."""
        while self._pending and not self.closed:
            self._ack_evt.clear()
            if self._pending:
                await self._ack_evt.wait()

    async def close(self) -> None:
        if self._writer is not None:
            try:
                self._writer.write(frame_payload(encode_bye()))
                await self._writer.drain()
            except ConnectionError:  # pragma: no cover - already gone
                pass
            self._writer.close()
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:  # pragma: no cover
                pass
        self.closed = True
