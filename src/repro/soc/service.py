"""Multiprocess network ingest service: asyncio frontend + shard workers.

Until now every event entered the VSOC through in-process Python calls;
this module is the front door ROADMAP names ("Live ingest service
frontend"): an :mod:`asyncio` TCP server that thousands of vehicle
connections report into, feeding a pool of **shard worker processes**
so the GIL stops being the scaling wall.

Topology::

    vehicles (VehicleClient) --TCP frames--> IngestServer (asyncio, 1 proc)
        |  HELLO/BATCH -->                        |
        |  <-- WELCOME/ACK/SUPPRESS/RESUME        | route by client id
        |                                         v
        |                    per-shard handoff buffers (raw frame bytes)
        |                                         |  one queue put per
        |                                         v  drained buffer
        |                          shard worker process 0..N-1, each:
        |                            IngestPipeline -> CorrelationEngine
        |                            -> IncidentTracker -> EventLog+snapshots
        |                                         |
        +------------- completion reports --------+

Design rules, each load-bearing for the >=3x multiprocess scaling:

- **The frontend never decodes an event.**  Clients serialize batches
  once (the same canonical-JSON event objects the durable log stores,
  inside the same ``u32len|CRC32`` envelope -- wire bytes, log bytes and
  shipment bytes share one codec); the frontend splits frames, reads the
  batch id with a 2-comma scan, and forwards the *raw payload bytes* to
  the owning shard's buffer.  All JSON and correlation cost lands in the
  worker processes.
- **Serialize once per drained batch.**  A handoff posts one message --
  ``(t_send, [(conn, batch_id, payload), ...])`` -- per buffer drain,
  not one per event, so queue pickling amortizes exactly like the
  pipeline's batch sinks do.
- **Sharding is by client id** (CRC-32, like
  :func:`~repro.soc.shard.region_shard_key`): one vehicle, one worker,
  so per-vehicle dedup and per-signature windows stay worker-local for
  region-resident campaigns, and a connection has exactly one
  backpressure authority.
- **Backpressure is explicit.**  The existing source-suppression signal
  (:attr:`~repro.soc.ingest.IngestPipeline.congested`) is sampled by the
  worker after admission and propagated -- together with the frontend's
  own outstanding-handoff watermark -- back to every connection on that
  shard as SUPPRESS/RESUME frames; :class:`VehicleClient` then sheds
  ASIL-A telemetry at the source (counted, never silent), exactly like
  the in-simulation :class:`~repro.soc.fleet.FleetWorkloadGenerator`.
- **Credit-based flow control.**  WELCOME grants each connection
  ``credits`` in-flight batches; every ACK (sent only after the owning
  worker has *dispatched* the batch) returns one.  A client can never
  overrun the service faster than workers drain, and the ACK round-trip
  is the honest per-batch ingest-latency measurement E19 reports p99 of.

Every worker owns a full single-shard analytic stack -- ingest pipeline,
:class:`~repro.soc.correlate.CorrelationEngine`, incident tracker, and a
:class:`~repro.soc.store.DurableStore` -- driven through
:meth:`~repro.soc.center.SecurityOperationsCenter.service_pump`, so the
PR 4 recovery contract holds **per worker**: SIGKILL a worker process,
then :func:`recover_worker` (snapshot + log-suffix replay) rebuilds its
correlator state byte-identically (``tests/test_soc_service.py``).

``mode="inline"`` is the deterministic single-process fallback: the same
wire path, buffers and worker cores, with handoffs executed synchronously
in the caller's process.  It is differential-tested byte-identical (final
analytics snapshot *and* log bytes) to driving the existing in-process
pipeline directly, so the network layer is a transport, never a
semantics change.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing as mp
import queue as queue_mod
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.safety import Asil
from repro.sim import Simulator
from repro.soc.center import (
    RecoveredAnalytics,
    SecurityOperationsCenter,
    recover_soc_state,
)
from repro.soc.events import SecurityEvent
from repro.soc.fleet import FleetModel
from repro.soc.shard import _stable_hash
from repro.soc.store import (
    CorruptRecord,
    DurableStore,
    canonical_dumps,
    event_from_obj,
    event_to_obj,
    frame_payload,
    unframe_payload,
)

__all__ = [
    "PROTOCOL_VERSION",
    "FrameStreamDecoder",
    "IngestServer",
    "IngestService",
    "ServiceConfig",
    "VehicleClient",
    "WorkerCore",
    "WorkerReport",
    "batch_id_of",
    "decode_message",
    "encode_ack",
    "encode_batch",
    "encode_bye",
    "encode_hello",
    "encode_resume",
    "encode_suppress",
    "encode_welcome",
    "recover_worker",
    "serve",
    "shard_for_client",
    "worker_root",
]

PROTOCOL_VERSION = 1

#: Wire message tags (first element of every canonical-JSON payload,
#: mirroring the log's ``"b"``/``"m"`` record tags).
_T_HELLO = "h"
_T_WELCOME = "w"
_T_BATCH = "e"
_T_ACK = "a"
_T_SUPPRESS = "s"
_T_RESUME = "r"
_T_BYE = "q"


# ----------------------------------------------------------------------
# Wire codec: canonical JSON payloads in the log's u32len|CRC32 envelope
# ----------------------------------------------------------------------

def encode_hello(client_id: str) -> bytes:
    """Connection opener (client -> server): declares the client id the
    frontend shards on."""
    return canonical_dumps([_T_HELLO, client_id, PROTOCOL_VERSION])


def encode_welcome(shard: int, num_workers: int, credits: int) -> bytes:
    """HELLO response (server -> client): the connection's shard, the
    worker fan-out, and the initial flow-control credit grant."""
    return canonical_dumps([_T_WELCOME, shard, num_workers, credits])


def encode_batch(batch_id: int, events: Sequence[SecurityEvent]) -> bytes:
    """One client event batch.  The events ride as the exact canonical
    objects the durable log stores (:func:`~repro.soc.store.event_to_obj`),
    so a worker's archival tap re-serializes them byte-identically."""
    return canonical_dumps(
        [_T_BATCH, batch_id, [event_to_obj(e) for e in events]])


def encode_ack(batch_id: int, accepted: int, credits: int) -> bytes:
    """Batch acknowledgement (server -> client), sent after the owning
    worker *dispatched* the batch: how many events were admitted, and
    how many flow-control credits this ACK returns."""
    return canonical_dumps([_T_ACK, batch_id, accepted, credits])


def encode_suppress() -> bytes:
    """Backpressure on (server -> client): shed ASIL-A telemetry at the
    source until RESUME."""
    return canonical_dumps([_T_SUPPRESS])


def encode_resume() -> bytes:
    """Backpressure off (server -> client)."""
    return canonical_dumps([_T_RESUME])


def encode_bye() -> bytes:
    """Orderly close (either direction)."""
    return canonical_dumps([_T_BYE])


def decode_message(payload: bytes) -> Tuple:
    """Decode one unframed wire payload to ``(tag, *fields)``.

    BATCH payloads come back as ``("e", batch_id, [SecurityEvent, ...])``
    -- the inverse of :func:`encode_batch`, hypothesis-tested
    byte-identical on the round trip.  Unknown tags raise
    :class:`~repro.soc.store.CorruptRecord` (a framed-but-nonsense
    payload is rejected, never half-interpreted).
    """
    try:
        obj = json.loads(payload.decode("utf-8"))
        tag = obj[0]
        if tag == _T_BATCH:
            return (_T_BATCH, int(obj[1]), [event_from_obj(o) for o in obj[2]])
        if tag == _T_ACK:
            return (_T_ACK, int(obj[1]), int(obj[2]), int(obj[3]))
        if tag == _T_HELLO:
            return (_T_HELLO, obj[1], int(obj[2]))
        if tag == _T_WELCOME:
            return (_T_WELCOME, int(obj[1]), int(obj[2]), int(obj[3]))
        if tag in (_T_SUPPRESS, _T_RESUME, _T_BYE):
            return (tag,)
    except CorruptRecord:
        raise
    except Exception as exc:
        raise CorruptRecord(f"undecodable wire payload: {exc}") from exc
    raise CorruptRecord(f"unknown wire tag {tag!r}")


def batch_id_of(payload: bytes) -> int:
    """Fast batch-id extraction from a raw BATCH payload -- a two-comma
    scan, no JSON parse.  This is the *only* field the frontend reads
    from a batch; everything else is decoded by the owning worker."""
    first = payload.index(b",")
    return int(payload[first + 1:payload.index(b",", first + 1)])


class FrameStreamDecoder:
    """Incremental decoder for a TCP stream of ``u32len|CRC32`` frames.

    ``feed(data)`` returns every whole, CRC-valid payload completed by
    ``data`` (zero or more) and buffers any trailing partial frame -- a
    torn frame is simply *incomplete*, never delivered.  Damage that is
    provable (CRC mismatch, or a length field beyond ``max_frame_bytes``)
    raises :class:`~repro.soc.store.CorruptRecord`: on a TCP stream there
    is no resynchronization point after a bad header, so the connection
    must be dropped, mirroring how the log rejects a corrupt record
    before the tail.
    """

    _HDR = 8  # u32 len + u32 crc, same header the log's segments use

    def __init__(self, max_frame_bytes: int = 1 << 24) -> None:
        self.max_frame_bytes = max_frame_bytes
        self._buf = bytearray()
        self.frames_decoded = 0
        self.bytes_fed = 0

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward an incomplete frame."""
        return len(self._buf)

    def feed(self, data: bytes) -> List[bytes]:
        self.bytes_fed += len(data)
        self._buf += data
        out: List[bytes] = []
        buf = self._buf
        pos = 0
        while len(buf) - pos >= self._HDR:
            length = int.from_bytes(buf[pos:pos + 4], "little")
            if length > self.max_frame_bytes:
                raise CorruptRecord(
                    f"frame length {length} exceeds {self.max_frame_bytes}")
            end = pos + self._HDR + length
            if len(buf) < end:
                break
            # unframe_payload re-checks length and CRC -- one code path
            # for wire frames, log records, and federation shipments.
            out.append(unframe_payload(bytes(buf[pos:end])))
            self.frames_decoded += 1
            pos = end
        if pos:
            del buf[:pos]
        return out


# ----------------------------------------------------------------------
# Worker core: one shard's full analytic stack
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ServiceConfig:
    """Per-worker analytic configuration (picklable -- it crosses the
    ``multiprocessing`` boundary at worker spawn).

    Correlation-hygiene parameters mirror
    :class:`~repro.soc.center.SecurityOperationsCenter`; the ingest queue
    is sized for a network front door (deep queue, generous batch) rather
    than a simulated capacity budget, and ``fsync="never"`` keeps the
    durable log OS-buffered: :meth:`~repro.soc.center.SecurityOperations\
Center.service_pump` flushes after every handoff, so a worker *process*
    kill loses nothing acknowledged (machine-crash durability is the
    operator's fsync-policy knob, priced by the store microbench)."""

    window_s: float = 8.0
    k: int = 3
    dedup_window_s: float = 4.0
    max_lateness_s: float = 2.0
    queue_capacity: int = 1 << 16
    batch_size: int = 256
    shed_policy_value: str = "lowest-severity"
    columnar: bool = False
    snapshot_every_pumps: int = 256
    fsync: str = "never"
    audit: bool = True


def worker_root(root, index: int) -> Path:
    """Durable-store root for shard worker ``index`` under the service
    root (one independent store per worker -- recovery is per worker)."""
    return Path(root) / f"worker-{index:02d}"


class WorkerCore:
    """One shard worker's state: a single-shard observe-only
    :class:`~repro.soc.center.SecurityOperationsCenter` (ingest pipeline,
    correlation engine, incident tracker, durable store) plus the wire
    decode loop.  Runs identically inline (fallback mode) or inside a
    worker process -- the process wrapper is pure transport.
    """

    def __init__(self, index: int, root=None,
                 config: Optional[ServiceConfig] = None) -> None:
        from repro.soc.ingest import ShedPolicy  # local: avoid cycle at import

        self.index = index
        self.config = config = config or ServiceConfig()
        store = DurableStore(worker_root(root, index),
                             fsync=config.fsync) if root is not None else None
        self.soc = SecurityOperationsCenter(
            Simulator(), FleetModel(0, []),
            queue_capacity=config.queue_capacity,
            batch_size=config.batch_size,
            shed_policy=ShedPolicy(config.shed_policy_value),
            window_s=config.window_s, k=config.k,
            dedup_window_s=config.dedup_window_s,
            max_lateness_s=config.max_lateness_s,
            respond=False, num_shards=1, audit=config.audit,
            columnar=config.columnar, store=store,
            snapshot_every_pumps=config.snapshot_every_pumps,
        )
        self.soc.start_service()
        self.handoffs = 0
        self.events_in = 0
        self.events_dispatched = 0
        self.decode_errors = 0
        self.handoff_latency_sum_s = 0.0
        self.handoff_latency_max_s = 0.0

    def ingest_handoff(self, t_send: float,
                       items: Sequence[Tuple[int, int, bytes]],
                       now: Optional[float] = None) -> "WorkerReport":
        """Process one frontend handoff: decode every client batch,
        admit its events at ``t_send`` (the frontend's routing
        timestamp, so one handoff is one deterministic ingest instant),
        dispatch everything via ``service_pump``, and report per-batch
        admission counts for the frontend's ACKs.

        A payload that fails to decode is refused whole (``accepted=-1``
        in the report -- the frontend closes that connection), never
        half-admitted.
        """
        soc = self.soc
        pipeline = soc.pipeline
        offer = pipeline.offer
        acks: List[Tuple[int, int, int, int]] = []
        for conn, batch_id, payload in items:
            try:
                _, _, events = decode_message(payload)
            except CorruptRecord:
                self.decode_errors += 1
                acks.append((conn, batch_id, 0, -1))
                continue
            accepted = 0
            for event in events:
                accepted += offer(t_send, event)
            self.events_in += len(events)
            acks.append((conn, batch_id, len(events), accepted))
        # Sample the existing source-suppression signal *after* admission
        # (the queue is at its handoff peak) -- this is the bit the
        # frontend propagates to clients as SUPPRESS/RESUME.
        congested = pipeline.congested
        dispatched = soc.service_pump(t_send if now is None else now)
        self.events_dispatched += dispatched
        self.handoffs += 1
        if now is not None:
            wait = max(0.0, now - t_send)
            self.handoff_latency_sum_s += wait
            if wait > self.handoff_latency_max_s:
                self.handoff_latency_max_s = wait
        return WorkerReport(shard=self.index, acks=tuple(acks),
                            dispatched=dispatched, congested=congested,
                            pump_no=soc._pump_no,
                            queue_depth=pipeline.queue_depth)

    def metrics(self) -> Dict[str, float]:
        """The center's full metrics dict plus service-side counters."""
        out = self.soc.metrics()
        out["service_handoffs"] = float(self.handoffs)
        out["service_events_in"] = float(self.events_in)
        out["service_decode_errors"] = float(self.decode_errors)
        out["service_handoff_latency_max_s"] = self.handoff_latency_max_s
        out["service_handoff_latency_mean_s"] = (
            self.handoff_latency_sum_s / self.handoffs if self.handoffs
            else 0.0)
        return out

    def close(self) -> None:
        """Final snapshot + orderly store close (clean shutdown path;
        the crash path needs neither -- that is the point)."""
        if self.soc.store is not None:
            self.soc.save_snapshot()
            self.soc.store.close()


@dataclass(frozen=True)
class WorkerReport:
    """One handoff's completion report (worker -> frontend)."""

    shard: int
    #: per client batch: (conn token, batch id, offered, accepted);
    #: accepted == -1 flags an undecodable payload (connection fault).
    acks: Tuple[Tuple[int, int, int, int], ...]
    dispatched: int
    congested: bool
    pump_no: int
    queue_depth: int


def recover_worker(root, index: int) -> RecoveredAnalytics:
    """Rebuild shard worker ``index``'s analytic state from its durable
    store -- the per-worker crash-recovery entry point (snapshot +
    log-suffix replay via :func:`~repro.soc.center.recover_soc_state`)."""
    return recover_soc_state(DurableStore(worker_root(root, index)))


# ----------------------------------------------------------------------
# Backends: inline (deterministic fallback) and multiprocess
# ----------------------------------------------------------------------

class _InlineBackend:
    """Single-process fallback: handoffs run synchronously in the
    caller.  Deterministic -- same cores, same wire path, no queues --
    which is what keeps the byte-identity differential tests meaningful.
    """

    mode = "inline"

    def __init__(self, num_workers: int, root, config: ServiceConfig) -> None:
        self.cores = [WorkerCore(i, root, config) for i in range(num_workers)]
        self._reports: List[WorkerReport] = []

    def submit(self, shard: int, t_send: float,
               items: Sequence[Tuple[int, int, bytes]]) -> bool:
        self._reports.append(self.cores[shard].ingest_handoff(t_send, items))
        return True

    def get_report(self, timeout: float = 0.0) -> Optional[WorkerReport]:
        return self._reports.pop(0) if self._reports else None

    def worker_metrics(self) -> List[Dict[str, float]]:
        return [core.metrics() for core in self.cores]

    def kill(self, shard: int) -> None:
        """Simulate a worker crash: drop the core on the floor without
        snapshot or close (its durable store is the only survivor)."""
        self.cores[shard] = None

    def close(self) -> List[Dict[str, float]]:
        metrics = [core.metrics() if core is not None else {}
                   for core in self.cores]
        for core in self.cores:
            if core is not None:
                core.close()
        return metrics


def _worker_main(index: int, root, config: ServiceConfig,
                 in_q: "mp.Queue", out_q: "mp.Queue") -> None:
    # Child-process body: coverage tooling cannot observe it, and its
    # logic is the already-tested WorkerCore -- this loop is transport.
    core = WorkerCore(index, root, config)  # pragma: no cover
    while True:  # pragma: no cover
        msg = in_q.get()
        if msg[0] == "b":
            report = core.ingest_handoff(msg[1], msg[2], now=time.time())
            out_q.put(("r", report))
        elif msg[0] == "stop":
            core.close()
            out_q.put(("x", index, core.metrics()))
            return


class _ProcessBackend:
    """One OS process per shard worker, fed over bounded
    ``multiprocessing`` queues (one shared completion queue).  A full
    feed queue refuses the submit -- the frontend keeps the handoff
    buffered and raises SUPPRESS, so overload degrades explicitly at the
    network edge instead of growing an unbounded pickle backlog."""

    mode = "process"

    def __init__(self, num_workers: int, root, config: ServiceConfig,
                 queue_max_handoffs: int = 16) -> None:
        ctx = mp.get_context()
        self.in_qs = [ctx.Queue(maxsize=queue_max_handoffs)
                      for _ in range(num_workers)]
        self.out_q = ctx.Queue()
        self.procs = [
            ctx.Process(target=_worker_main,
                        args=(i, root, config, self.in_qs[i], self.out_q),
                        daemon=True)
            for i in range(num_workers)
        ]
        for proc in self.procs:
            proc.start()
        self._final: Dict[int, Dict[str, float]] = {}

    def submit(self, shard: int, t_send: float,
               items: Sequence[Tuple[int, int, bytes]]) -> bool:
        try:
            # One pickle per drained handoff batch, never per event.
            self.in_qs[shard].put_nowait(("b", t_send, list(items)))
            return True
        except queue_mod.Full:
            return False

    def get_report(self, timeout: float = 0.0) -> Optional[WorkerReport]:
        try:
            msg = (self.out_q.get(timeout=timeout) if timeout
                   else self.out_q.get_nowait())
        except queue_mod.Empty:
            return None
        if msg[0] == "x":
            self._final[msg[1]] = msg[2]
            return None
        return msg[1]

    def kill(self, shard: int) -> None:
        """SIGKILL one worker -- the crash the per-worker durable store
        exists for."""
        self.procs[shard].kill()
        self.procs[shard].join()

    def close(self) -> List[Dict[str, float]]:
        expected = 0
        for shard, proc in enumerate(self.procs):
            if proc.is_alive():
                self.in_qs[shard].put(("stop",))
                expected += 1
        deadline = time.time() + 30.0
        while len(self._final) < expected and time.time() < deadline:
            try:
                msg = self.out_q.get(timeout=0.2)
            except queue_mod.Empty:  # pragma: no cover - slow shutdown
                continue
            if msg[0] == "x":
                self._final[msg[1]] = msg[2]
        for proc in self.procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - hung worker backstop
                proc.kill()
        return [self._final.get(i, {}) for i in range(len(self.procs))]


def shard_for_client(client_id: str, num_workers: int) -> int:
    """Connection-level shard key: CRC-32 of the client id (process-
    stable, like every shard key in :mod:`repro.soc.shard`)."""
    return _stable_hash(client_id) % num_workers


# ----------------------------------------------------------------------
# The asyncio frontend
# ----------------------------------------------------------------------

@dataclass
class _Conn:
    """Frontend-side connection state."""

    conn_id: int
    client_id: str
    shard: int
    writer: asyncio.StreamWriter
    suppressed: bool = False
    batches: int = 0
    events_offered: int = 0
    events_accepted: int = 0


class IngestService:
    """The ingest tier behind the TCP server: shard buffers, worker
    backend, flow accounting, and the SUPPRESS/RESUME state machine.

    Usable without any network at all (the differential and recovery
    tests drive :meth:`route` / :meth:`flush` / :meth:`poll_completions`
    directly); :class:`IngestServer` adds the asyncio transport on top.

    ``suppress_after`` / ``resume_below`` bound the *outstanding
    handoffs* per shard -- the frontend's own watermark on top of the
    worker-sampled queue-congestion signal; crossing either raises
    SUPPRESS to every connection on the shard.
    """

    def __init__(self, num_workers: int = 1, *, mode: str = "process",
                 root=None, config: Optional[ServiceConfig] = None,
                 handoff_batch: int = 64, queue_max_handoffs: int = 16,
                 suppress_after: int = 8, resume_below: int = 2,
                 initial_credits: int = 8,
                 clock: Callable[[], float] = time.time) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if mode not in ("process", "inline"):
            raise ValueError("mode must be 'process' or 'inline'")
        self.num_workers = num_workers
        self.mode = mode
        self.config = config or ServiceConfig()
        self.handoff_batch = handoff_batch
        self.suppress_after = suppress_after
        self.resume_below = resume_below
        self.initial_credits = initial_credits
        self.clock = clock
        self.backend = (
            _InlineBackend(num_workers, root, self.config)
            if mode == "inline" else
            _ProcessBackend(num_workers, root, self.config,
                            queue_max_handoffs=queue_max_handoffs))
        self._buffers: List[List[Tuple[int, int, bytes]]] = [
            [] for _ in range(num_workers)]
        self._outstanding = [0] * num_workers
        self._congested = [False] * num_workers
        self._suppressed = [False] * num_workers
        self.conns: Dict[int, _Conn] = {}
        self._shard_conns: List[Dict[int, _Conn]] = [
            {} for _ in range(num_workers)]
        self._next_conn = 0
        # Flow totals (frontend truth; per-worker truth comes from
        # worker_metrics -- the service conservation test ties them).
        self.batches_routed = 0
        self.batches_acked = 0
        self.events_acked = 0
        self.events_refused = 0
        self.handoffs_submitted = 0
        self.submit_refusals = 0
        self.suppress_transitions = 0
        self.closed = False
        self._final_metrics: Optional[List[Dict[str, float]]] = None

    # -- connection lifecycle ------------------------------------------
    def open_conn(self, client_id: str,
                  writer: Optional[asyncio.StreamWriter] = None) -> _Conn:
        conn = _Conn(self._next_conn, client_id,
                     shard_for_client(client_id, self.num_workers), writer)
        self._next_conn += 1
        self.conns[conn.conn_id] = conn
        self._shard_conns[conn.shard][conn.conn_id] = conn
        conn.suppressed = self._suppressed[conn.shard]
        return conn

    def close_conn(self, conn_id: int) -> None:
        conn = self.conns.pop(conn_id, None)
        if conn is not None:
            self._shard_conns[conn.shard].pop(conn_id, None)

    # -- ingest path ----------------------------------------------------
    def route(self, conn: _Conn, payload: bytes) -> None:
        """Buffer one raw BATCH payload for the connection's shard; the
        batch id is scanned out, the events are not decoded here."""
        self._buffers[conn.shard].append(
            (conn.conn_id, batch_id_of(payload), payload))
        conn.batches += 1
        self.batches_routed += 1

    def buffered(self, shard: Optional[int] = None) -> int:
        if shard is not None:
            return len(self._buffers[shard])
        return sum(len(b) for b in self._buffers)

    def flush(self, shard: Optional[int] = None) -> int:
        """Drain non-empty shard buffers into worker handoffs (one
        backend submit per drained buffer).  A refused submit (full feed
        queue) leaves the buffer intact and trips SUPPRESS.  Returns the
        number of handoffs submitted."""
        shards = range(self.num_workers) if shard is None else (shard,)
        submitted = 0
        t_send = self.clock()
        for index in shards:
            buf = self._buffers[index]
            if not buf:
                continue
            if self.backend.submit(index, t_send, buf):
                self._buffers[index] = []
                self._outstanding[index] += 1
                self.handoffs_submitted += 1
                submitted += 1
            else:
                self.submit_refusals += 1
            self._update_suppression(index)
        return submitted

    def maybe_flush(self, shard: int) -> int:
        """Flush one shard iff its buffer reached ``handoff_batch``."""
        if len(self._buffers[shard]) >= self.handoff_batch:
            return self.flush(shard)
        return 0

    def apply_report(self, report: WorkerReport
                     ) -> List[Tuple[_Conn, int, int, int]]:
        """Account one finished handoff; returns per-batch ack work
        items ``(conn, batch_id, offered, accepted)`` for live
        connections (the caller sends the ACK frames -- or drops the
        connection where ``accepted < 0`` flags an undecodable
        payload)."""
        out: List[Tuple[_Conn, int, int, int]] = []
        self._outstanding[report.shard] -= 1
        self._congested[report.shard] = report.congested
        for conn_id, batch_id, offered, accepted in report.acks:
            self.batches_acked += 1
            conn = self.conns.get(conn_id)
            if accepted >= 0:
                self.events_acked += accepted
                self.events_refused += offered - accepted
            if conn is not None:
                out.append((conn, batch_id, offered, accepted))
        self._update_suppression(report.shard)
        return out

    def poll_completions(self, timeout: float = 0.0
                         ) -> List[Tuple[_Conn, int, int, int]]:
        """Collect every finished handoff via :meth:`apply_report`."""
        out: List[Tuple[_Conn, int, int, int]] = []
        while True:
            report = self.backend.get_report(timeout=timeout)
            timeout = 0.0  # only the first get may block
            if report is None:
                break
            out.extend(self.apply_report(report))
        return out

    # -- backpressure ---------------------------------------------------
    def _update_suppression(self, shard: int) -> None:
        """Recompute the shard's SUPPRESS state from the outstanding-
        handoff watermark OR the worker's own congestion signal."""
        if self._suppressed[shard]:
            want = (self._outstanding[shard] >= self.resume_below
                    or len(self._buffers[shard]) >= self.handoff_batch
                    or self._congested[shard])
        else:
            want = (self._outstanding[shard] >= self.suppress_after
                    or len(self._buffers[shard])
                    >= self.handoff_batch * self.suppress_after
                    or self._congested[shard])
        if want != self._suppressed[shard]:
            self._suppressed[shard] = want
            self.suppress_transitions += 1
            frame = frame_payload(
                encode_suppress() if want else encode_resume())
            for conn in self._shard_conns[shard].values():
                conn.suppressed = want
                if conn.writer is not None:
                    conn.writer.write(frame)

    def suppressed(self, shard: int) -> bool:
        return self._suppressed[shard]

    def kill_worker(self, shard: int) -> None:
        """Crash one shard worker (SIGKILL in process mode, dropped
        core inline) and forget its in-flight work -- the entry point
        for the kill-a-worker recovery tests.  Anything buffered or
        outstanding for the shard is lost *unacked*: the client-side
        credit ledger sees exactly which batches died."""
        self.backend.kill(shard)
        self._buffers[shard] = []
        self._outstanding[shard] = 0

    # -- shutdown / observability --------------------------------------
    def drain_and_close(self, poll_interval_s: float = 0.01,
                        timeout_s: float = 30.0) -> List[Dict[str, float]]:
        """Flush every buffer, wait for all outstanding handoffs, then
        stop the workers; returns their final metrics dicts."""
        if self.closed:
            return self._final_metrics or []
        deadline = time.time() + timeout_s
        while (self.buffered() or any(x > 0 for x in self._outstanding)):
            self.flush()
            self.poll_completions(timeout=poll_interval_s)
            if time.time() > deadline:  # pragma: no cover - hang backstop
                break
        self._final_metrics = self.backend.close()
        self.closed = True
        return self._final_metrics

    def worker_metrics(self) -> List[Dict[str, float]]:
        """Final per-worker metrics (after :meth:`drain_and_close`); the
        inline backend can also report live."""
        if self._final_metrics is not None:
            return self._final_metrics
        if isinstance(self.backend, _InlineBackend):
            return self.backend.worker_metrics()
        raise RuntimeError("process-mode metrics are collected at "
                           "drain_and_close()")

    def metrics(self) -> Dict[str, float]:
        """Frontend flow counters (live at any time)."""
        return {
            "batches_routed": float(self.batches_routed),
            "batches_acked": float(self.batches_acked),
            "events_acked": float(self.events_acked),
            "events_refused": float(self.events_refused),
            "handoffs_submitted": float(self.handoffs_submitted),
            "submit_refusals": float(self.submit_refusals),
            "suppress_transitions": float(self.suppress_transitions),
            "buffered": float(self.buffered()),
            "outstanding": float(sum(self._outstanding)),
            "connections": float(len(self.conns)),
        }


class IngestServer:
    """The asyncio TCP frontend over an :class:`IngestService`.

    One reader coroutine per connection (HELLO -> WELCOME, then BATCH
    frames routed to shard buffers); one pump task flushing buffers
    every ``flush_interval_s`` and fanning completed handoffs back out
    as ACK frames.  In process mode a collector thread blocks on the
    workers' completion queue and wakes the loop, so ACK latency is not
    quantized to the flush interval.
    """

    def __init__(self, service: IngestService, host: str = "127.0.0.1",
                 port: int = 0, flush_interval_s: float = 0.002) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.flush_interval_s = flush_interval_s
        self._server: Optional[asyncio.AbstractServer] = None
        self._pump_task: Optional[asyncio.Task] = None
        self._collector: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._report_wakeup: Optional[asyncio.Event] = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_conn, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._report_wakeup = asyncio.Event()
        self._pump_task = asyncio.create_task(self._pump())
        if self.service.mode == "process":
            loop = asyncio.get_running_loop()
            self._collector = threading.Thread(
                target=self._collect, args=(loop,), daemon=True)
            self._collector.start()

    def _collect(self, loop: asyncio.AbstractEventLoop) -> None:
        """Blocking completion-queue reader (thread): parks reports on
        the service and nudges the loop's pump task."""
        backend = self.service.backend
        while not self._stop.is_set():
            report = backend.get_report(timeout=0.05)
            if report is not None:
                loop.call_soon_threadsafe(self._ack_report, report)

    def _ack_report(self, report: WorkerReport) -> None:
        self._write_acks(self.service.apply_report(report))

    def _write_acks(self, items: List[Tuple[_Conn, int, int, int]]) -> None:
        service = self.service
        for conn, batch_id, offered, accepted in items:
            if accepted < 0:
                # Undecodable payload: protocol fault, drop the client.
                conn.writer.close()
                service.close_conn(conn.conn_id)
                continue
            conn.events_offered += offered
            conn.events_accepted += accepted
            conn.writer.write(frame_payload(
                encode_ack(batch_id, accepted, 1)))

    async def _pump(self) -> None:
        service = self.service
        while True:
            await asyncio.sleep(self.flush_interval_s)
            service.flush()
            if service.mode == "inline":
                self._write_acks(service.poll_completions())

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        service = self.service
        decoder = FrameStreamDecoder()
        conn: Optional[_Conn] = None
        try:
            while True:
                data = await reader.read(1 << 16)
                if not data:
                    break
                try:
                    payloads = decoder.feed(data)
                except CorruptRecord:
                    break  # undecodable stream: drop the connection
                for payload in payloads:
                    if payload[:4] == b'["e"' and conn is not None:
                        service.route(conn, payload)
                        service.maybe_flush(conn.shard)
                        continue
                    msg = decode_message(payload)
                    if msg[0] == _T_HELLO and conn is None:
                        conn = service.open_conn(msg[1], writer)
                        writer.write(frame_payload(encode_welcome(
                            conn.shard, service.num_workers,
                            service.initial_credits)))
                        if conn.suppressed:
                            writer.write(frame_payload(encode_suppress()))
                    elif msg[0] == _T_BYE:
                        writer.write(frame_payload(encode_bye()))
                        await writer.drain()
                        return
        finally:
            if conn is not None:
                service.close_conn(conn.conn_id)
            writer.close()

    async def stop(self) -> List[Dict[str, float]]:
        """Quiesce: flush + await outstanding handoffs, stop workers,
        close the listener.  Returns final per-worker metrics."""
        if self._pump_task is not None:
            self._pump_task.cancel()
        self._stop.set()
        if self._collector is not None:
            self._collector.join(timeout=2.0)
        # Drain remaining completions so every acked batch is accounted.
        metrics = await asyncio.get_running_loop().run_in_executor(
            None, self.service.drain_and_close)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        return metrics


async def serve(service: IngestService, host: str = "127.0.0.1",
                port: int = 0, flush_interval_s: float = 0.002
                ) -> IngestServer:
    """Start an :class:`IngestServer` for ``service``; returns it with
    ``.port`` resolved (port 0 picks a free one)."""
    server = IngestServer(service, host, port,
                          flush_interval_s=flush_interval_s)
    await server.start()
    return server


# ----------------------------------------------------------------------
# The vehicle-side client
# ----------------------------------------------------------------------

class VehicleClient:
    """Async vehicle uplink with credit-based flow control.

    ``send_events`` consumes one credit per batch; credits return with
    ACKs (each ACK's round trip is recorded -- the p99 E19 publishes).
    While the server holds this connection SUPPRESSED, ASIL-A telemetry
    is shed at the source and counted (``suppressed_at_source``),
    mirroring :class:`~repro.soc.fleet.FleetWorkloadGenerator`; higher
    severities still go through -- backpressure never mutes actionable
    security telemetry.
    """

    def __init__(self, client_id: str, host: str = "127.0.0.1",
                 port: int = 0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.client_id = client_id
        self.host = host
        self.port = port
        self.clock = clock
        self.shard = -1
        self.credits = 0
        self.suppressed = False
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._decoder = FrameStreamDecoder()
        self._next_batch = 0
        self._pending: Dict[int, Tuple[float, int]] = {}
        self._credit_evt = asyncio.Event()
        self._ack_evt = asyncio.Event()
        self.batches_sent = 0
        self.events_sent = 0
        self.events_accepted = 0
        self.suppressed_at_source = 0
        self.rtts_s: List[float] = []
        self.closed = False

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port)
        self._writer.write(frame_payload(encode_hello(self.client_id)))
        # WELCOME arrives before any ACK/SUPPRESS; read it synchronously.
        while True:
            data = await self._reader.read(1 << 16)
            if not data:
                raise ConnectionError("server closed during handshake")
            payloads = self._decoder.feed(data)
            if payloads:
                msg = decode_message(payloads[0])
                if msg[0] != _T_WELCOME:
                    raise CorruptRecord("expected WELCOME")
                self.shard, _, self.credits = msg[1], msg[2], msg[3]
                if self.credits > 0:
                    self._credit_evt.set()
                for extra in payloads[1:]:
                    self._on_payload(extra)
                break
        self._reader_task = asyncio.create_task(self._read_loop())

    async def _read_loop(self) -> None:
        try:
            while True:
                data = await self._reader.read(1 << 16)
                if not data:
                    break
                for payload in self._decoder.feed(data):
                    self._on_payload(payload)
        except (asyncio.CancelledError, ConnectionError):
            pass
        finally:
            self.closed = True
            self._ack_evt.set()
            self._credit_evt.set()

    def _on_payload(self, payload: bytes) -> None:
        msg = decode_message(payload)
        if msg[0] == _T_ACK:
            _, batch_id, accepted, credits = msg
            sent = self._pending.pop(batch_id, None)
            if sent is not None:
                self.rtts_s.append(self.clock() - sent[0])
                self.events_accepted += accepted
            self.credits += credits
            if self.credits > 0:
                self._credit_evt.set()
            self._ack_evt.set()
        elif msg[0] == _T_SUPPRESS:
            self.suppressed = True
        elif msg[0] == _T_RESUME:
            self.suppressed = False

    async def send_events(self, events: Sequence[SecurityEvent]
                          ) -> Optional[int]:
        """Send one batch (one credit).  Under suppression, ASIL-A
        events are shed and counted; returns the batch id, or ``None``
        if suppression shed the whole batch."""
        if self.suppressed:
            kept = [e for e in events if e.severity > Asil.A]
            self.suppressed_at_source += len(events) - len(kept)
            if not kept:
                return None
            events = kept
        while self.credits <= 0 and not self.closed:
            self._credit_evt.clear()
            await self._credit_evt.wait()
        if self.closed:
            raise ConnectionError("connection closed")
        self.credits -= 1
        batch_id = self._next_batch
        self._next_batch += 1
        self._pending[batch_id] = (self.clock(), len(events))
        self._writer.write(frame_payload(encode_batch(batch_id, events)))
        self.batches_sent += 1
        self.events_sent += len(events)
        return batch_id

    async def send_payload(self, payload: bytes, n_events: int = 0) -> int:
        """Send a pre-encoded BATCH payload (the zero-copy path the
        benchmark uses: serialize once, send many).  The payload's batch
        id must be fresh for this connection; ``n_events`` feeds the
        client's sent-events counter (the payload is deliberately not
        re-parsed here)."""
        while self.credits <= 0 and not self.closed:
            self._credit_evt.clear()
            await self._credit_evt.wait()
        if self.closed:
            raise ConnectionError("connection closed")
        self.credits -= 1
        batch_id = batch_id_of(payload)
        self._pending[batch_id] = (self.clock(), n_events)
        self._writer.write(frame_payload(payload))
        self.batches_sent += 1
        self.events_sent += n_events
        return batch_id

    async def drain(self) -> None:
        """Wait until every sent batch has been ACKed."""
        while self._pending and not self.closed:
            self._ack_evt.clear()
            if self._pending:
                await self._ack_evt.wait()

    async def close(self) -> None:
        if self._writer is not None:
            try:
                self._writer.write(frame_payload(encode_bye()))
                await self._writer.drain()
            except ConnectionError:  # pragma: no cover - already gone
                pass
            self._writer.close()
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:  # pragma: no cover
                pass
        self.closed = True
