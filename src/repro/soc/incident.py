"""Incident lifecycle: what the SOC *does* with a detection.

A correlator verdict becomes an :class:`Incident` that walks a strict
state machine::

    OPEN ──► TRIAGED ──► CONTAINED ──► REMEDIATED
      │         │
      └─────────┴──────► FALSE_POSITIVE

Severity scoring follows the safety/security interplay of the paper's
§3: the base level is the worst ASIL among the triggering events (an IDS
alert on the powertrain bus outranks a V2X content lie), escalated one
level when the campaign's spread crosses ``escalation_spread`` vehicles
-- a class-break in progress is a fleet hazard even when each vehicle's
local hazard is moderate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Set, Tuple

from repro.core.safety import Asil
from repro.soc.correlate import CampaignDetection


class IncidentState(Enum):
    OPEN = "open"
    TRIAGED = "triaged"
    CONTAINED = "contained"
    REMEDIATED = "remediated"
    FALSE_POSITIVE = "false-positive"


_ALLOWED: Dict[IncidentState, Set[IncidentState]] = {
    IncidentState.OPEN: {IncidentState.TRIAGED, IncidentState.FALSE_POSITIVE},
    IncidentState.TRIAGED: {IncidentState.CONTAINED, IncidentState.FALSE_POSITIVE},
    IncidentState.CONTAINED: {IncidentState.REMEDIATED},
    IncidentState.REMEDIATED: set(),
    IncidentState.FALSE_POSITIVE: set(),
}


class InvalidTransition(RuntimeError):
    """Raised on a lifecycle step the state machine forbids."""


AMENDMENT_KINDS = ("confirm", "amend", "retract")


@dataclass(frozen=True)
class Amendment:
    """One reconciliation outcome for a provisional verdict.

    Optimistic federation (:mod:`repro.soc.federation`) emits verdicts
    past a stalled region's watermark; when the deterministic
    reconciliation pass replays the same records in canonical order it
    classifies every provisional verdict exactly once: ``confirm`` (the
    strict replay fired the identical detection), ``amend`` (it fired
    with different spread/timing -- the deltas are recorded here), or
    ``retract`` (it never fired; the provisional incident was a false
    page).  Amendments describe the *journey* from optimistic to strict
    state, so they are journaled beside the tracker, never inside its
    canonical snapshot.
    """

    kind: str                      # one of AMENDMENT_KINDS
    signature: str
    t: float                       # reconciliation time
    incident_id: Optional[str] = None
    vehicles_added: int = 0
    vehicles_removed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in AMENDMENT_KINDS:
            raise ValueError(f"unknown amendment kind {self.kind!r}")

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe export form (the hub's amendment feed)."""
        return {
            "kind": self.kind,
            "signature": self.signature,
            "t": self.t,
            "incident_id": self.incident_id,
            "vehicles_added": self.vehicles_added,
            "vehicles_removed": self.vehicles_removed,
        }


@dataclass
class Incident:
    """One fleet-level security incident."""

    incident_id: str
    signature: str
    opened_at: float
    severity: Asil
    state: IncidentState = IncidentState.OPEN
    vehicles: Set[str] = field(default_factory=set)
    history: List[Tuple[float, IncidentState]] = field(default_factory=list)
    base_severity: Optional[Asil] = None  # pre-escalation level
    #: Opened from an optimistic (pre-reconciliation) verdict; cleared by
    #: a ``confirm``/``amend`` amendment or the reconciliation swap.
    provisional: bool = False

    def __post_init__(self) -> None:
        if self.base_severity is None:
            self.base_severity = self.severity
        if not self.history:
            self.history.append((self.opened_at, IncidentState.OPEN))

    def advance(self, now: float, state: IncidentState) -> None:
        if state not in _ALLOWED[self.state]:
            raise InvalidTransition(
                f"{self.incident_id}: {self.state.value} -> {state.value}"
            )
        self.state = state
        self.history.append((now, state))

    def _entered(self, state: IncidentState) -> Optional[float]:
        for t, s in self.history:
            if s is state:
                return t
        return None

    @property
    def time_to_containment_s(self) -> Optional[float]:
        t = self._entered(IncidentState.CONTAINED)
        return None if t is None else t - self.opened_at

    @property
    def time_to_remediation_s(self) -> Optional[float]:
        t = self._entered(IncidentState.REMEDIATED)
        return None if t is None else t - self.opened_at

    @property
    def closed(self) -> bool:
        return self.state in (IncidentState.REMEDIATED, IncidentState.FALSE_POSITIVE)

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        """Canonical JSON-safe form (``vehicles`` sorted so equal
        incidents serialize byte-identically)."""
        return {
            "incident_id": self.incident_id,
            "signature": self.signature,
            "opened_at": self.opened_at,
            "severity": int(self.severity),
            "state": self.state.value,
            "vehicles": sorted(self.vehicles),
            "history": [[t, s.value] for t, s in self.history],
            "base_severity": int(self.base_severity),
            "provisional": self.provisional,
        }

    @classmethod
    def from_dict(cls, obj: Dict[str, object]) -> "Incident":
        return cls(
            incident_id=obj["incident_id"],
            signature=obj["signature"],
            opened_at=obj["opened_at"],
            severity=Asil(obj["severity"]),
            state=IncidentState(obj["state"]),
            vehicles=set(obj["vehicles"]),
            history=[(t, IncidentState(s)) for t, s in obj["history"]],
            base_severity=Asil(obj["base_severity"]),
            provisional=bool(obj.get("provisional", False)),
        )


class IncidentTracker:
    """Opens incidents from detections; aggregates lifecycle metrics."""

    def __init__(self, escalation_spread: int = 25) -> None:
        self.escalation_spread = escalation_spread
        self.incidents: Dict[str, Incident] = {}          # by incident id
        self._by_signature: Dict[str, Incident] = {}
        self._counter = 0
        #: Reconciliation journal (journey, not state): excluded from
        #: :meth:`snapshot` so amended trackers stay byte-comparable.
        self.amendments: List[Amendment] = []

    # ------------------------------------------------------------------
    def score(self, base: Asil, spread: int) -> Asil:
        """Base ASIL, bumped one level at fleet-scale spread."""
        level = int(base)
        if spread >= self.escalation_spread:
            level += 1
        return Asil(min(int(Asil.D), max(int(Asil.A), level)))

    def open_from_detection(self, detection: CampaignDetection,
                            base_severity: Asil = Asil.B,
                            provisional: bool = False) -> Incident:
        if detection.signature in self._by_signature:
            return self._by_signature[detection.signature]
        self._counter += 1
        incident = Incident(
            incident_id=f"INC-{self._counter:05d}",
            signature=detection.signature,
            opened_at=detection.detect_time,
            severity=self.score(base_severity, detection.spread),
            vehicles=set(detection.vehicles),
            base_severity=base_severity,
            provisional=provisional,
        )
        self.incidents[incident.incident_id] = incident
        self._by_signature[detection.signature] = incident
        return incident

    def incident_for(self, signature: str) -> Optional[Incident]:
        return self._by_signature.get(signature)

    def attach_vehicle(self, signature: str, vehicle_id: str) -> None:
        incident = self._by_signature.get(signature)
        if incident is not None and not incident.closed:
            incident.vehicles.add(vehicle_id)
            # Always score from the pre-escalation base so spread growth
            # bumps exactly one level, never compounds per attachment.
            bumped = self.score(incident.base_severity or incident.severity,
                                len(incident.vehicles))
            if bumped > incident.severity:
                incident.severity = bumped

    # ------------------------------------------------------------------
    # Reconciliation amendments
    # ------------------------------------------------------------------
    def record_amendment(self, amendment: Amendment) -> bool:
        """Journal one reconciliation outcome and apply its lifecycle
        effect to the matching local incident, if any.

        ``confirm``/``amend`` clear the incident's ``provisional`` flag
        (the verdict survived the deterministic replay); ``retract``
        walks a still-open incident to ``FALSE_POSITIVE`` -- the page was
        an optimistic artifact.  A retract landing after containment is
        journaled but leaves the lifecycle alone (the response already
        ran; only a human can unwind it).  Returns ``True`` when a local
        incident was touched.
        """
        self.amendments.append(amendment)
        incident = self._by_signature.get(amendment.signature)
        if incident is None:
            return False
        if amendment.kind in ("confirm", "amend"):
            incident.provisional = False
            return True
        # retract
        if incident.state in (IncidentState.OPEN, IncidentState.TRIAGED):
            incident.advance(amendment.t, IncidentState.FALSE_POSITIVE)
            return True
        return False

    def amendment_counts(self) -> Dict[str, int]:
        counts = {kind: 0 for kind in AMENDMENT_KINDS}
        for amendment in self.amendments:
            counts[amendment.kind] += 1
        return counts

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Canonical JSON-safe dump of every incident plus the id
        counter (incident ids must keep incrementing across a restart).
        The :attr:`amendments` journal is deliberately excluded: it
        describes how the state was reached, not the state itself."""
        return {
            "escalation_spread": self.escalation_spread,
            "counter": self._counter,
            "incidents": [
                self.incidents[iid].as_dict()
                for iid in sorted(self.incidents)
            ],
        }

    @classmethod
    def from_snapshot(cls, state: Dict[str, object]) -> "IncidentTracker":
        tracker = cls(escalation_spread=state["escalation_spread"])
        tracker._counter = state["counter"]
        for obj in state["incidents"]:
            incident = Incident.from_dict(obj)
            tracker.incidents[incident.incident_id] = incident
            tracker._by_signature[incident.signature] = incident
        return tracker

    # ------------------------------------------------------------------
    def count_by_state(self) -> Dict[str, int]:
        counts = {state.value: 0 for state in IncidentState}
        for incident in self.incidents.values():
            counts[incident.state.value] += 1
        return counts

    def mean_time_to_containment_s(self) -> float:
        times = [
            i.time_to_containment_s for i in self.incidents.values()
            if i.time_to_containment_s is not None
        ]
        return sum(times) / len(times) if times else 0.0

    def mean_time_to_remediation_s(self) -> float:
        times = [
            i.time_to_remediation_s for i in self.incidents.values()
            if i.time_to_remediation_s is not None
        ]
        return sum(times) / len(times) if times else 0.0
