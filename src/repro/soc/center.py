"""The VSOC facade: ingestion -> correlation -> incidents -> response.

Wires the four subsystem stages into one
:class:`SecurityOperationsCenter` running on a shared simulation kernel,
and aggregates every stage's counters into a single flat ``metrics()``
dict (the shape E17 publishes and the determinism tests pin).
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.core.safety import Asil
from repro.sim import Simulator
from repro.soc.correlate import CorrelationEngine
from repro.soc.events import DEFAULT_SOURCE_SEVERITY, SecurityEvent
from repro.soc.fleet import FleetModel
from repro.soc.incident import IncidentTracker
from repro.soc.ingest import IngestPipeline, ShedPolicy
from repro.soc.respond import ResponseOrchestrator
from repro.soc.shard import ConservationAudit, ShardedIngestPipeline, ShardKeyFn


class SecurityOperationsCenter:
    """An OEM fleet SOC over a simulated vehicle population.

    ``respond=False`` gives the observe-only configuration used as the
    E17 baseline: everything is ingested and correlated, but no incident
    ever reaches containment -- the fleet burns.
    """

    def __init__(
        self,
        sim: Simulator,
        fleet: FleetModel,
        capacity_eps: float = 250.0,
        queue_capacity: int = 2048,
        batch_size: int = 64,
        shed_policy: ShedPolicy = ShedPolicy.LOWEST_SEVERITY,
        window_s: float = 8.0,
        k: int = 3,
        dedup_window_s: float = 4.0,
        max_lateness_s: float = 2.0,
        respond: bool = True,
        ota_sample: int = 1,
        pump_tick_s: float = 0.25,
        num_shards: int = 1,
        shard_key: Optional[ShardKeyFn] = None,
        audit: bool = True,
    ) -> None:
        self.sim = sim
        self.fleet = fleet
        self.pump_tick_s = pump_tick_s

        # num_shards=1 keeps the plain single-queue pipeline (the two are
        # behaviorally identical -- the differential tests prove it -- but
        # the plain object is what the pre-shard seed benchmarks pinned).
        if num_shards > 1:
            self.pipeline = ShardedIngestPipeline(
                num_shards=num_shards,
                shard_key=shard_key,
                capacity_eps=capacity_eps,
                queue_capacity=queue_capacity,
                batch_size=batch_size,
                shed_policy=shed_policy,
            )
        else:
            self.pipeline = IngestPipeline(
                capacity_eps=capacity_eps,
                queue_capacity=queue_capacity,
                batch_size=batch_size,
                shed_policy=shed_policy,
            )
        self.audit: Optional[ConservationAudit] = (
            ConservationAudit() if audit else None
        )
        self.correlator = CorrelationEngine(
            window_s=window_s, k=k,
            dedup_window_s=dedup_window_s, max_lateness_s=max_lateness_s,
        )
        self.tracker = IncidentTracker()
        self.responder: Optional[ResponseOrchestrator] = (
            ResponseOrchestrator(sim, self.tracker, fleet,
                                 ota_sample=ota_sample)
            if respond else None
        )
        self.pipeline.add_sink(self._on_event)
        self._started = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        if not self._started:
            self._started = True
            self.sim.schedule(self.pump_tick_s, self._pump)

    def _pump(self) -> None:
        self.pipeline.pump(self.sim.now)
        if self.audit is not None:
            self.audit.check(self.pipeline)
        self.sim.schedule(self.pump_tick_s, self._pump)

    def _on_event(self, now: float, event: SecurityEvent) -> None:
        detection = self.correlator.observe(event)
        if detection is not None:
            base = DEFAULT_SOURCE_SEVERITY.get(event.source, Asil.A)
            incident = self.tracker.open_from_detection(detection, base)
            if self.responder is not None:
                self.responder.on_detection(incident)
        elif event.signature in self.correlator.flagged_signatures:
            self.tracker.attach_vehicle(event.signature, event.vehicle_id)

    # ------------------------------------------------------------------
    def flagged_signatures(self) -> Set[str]:
        return set(self.correlator.flagged_signatures)

    def precision_recall(self) -> Dict[str, float]:
        """Score flagged signatures against the fleet's ground truth."""
        truth = self.fleet.attack_signatures()
        flagged = self.flagged_signatures()
        tp = len(flagged & truth)
        precision = tp / len(flagged) if flagged else 1.0
        recall = tp / len(truth) if truth else 1.0
        return {"precision": precision, "recall": recall,
                "true_positives": float(tp),
                "false_positives": float(len(flagged) - tp)}

    def metrics(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        out.update(self.pipeline.metrics())
        out.update(self.correlator.metrics())
        out.update(self.precision_recall())
        out["incidents_open"] = float(len(self.tracker.incidents))
        out["mean_time_to_containment_s"] = self.tracker.mean_time_to_containment_s()
        if self.responder is not None:
            out.update(self.responder.metrics())
        out["fleet_compromised"] = float(self.fleet.total_compromised())
        out["fleet_targets"] = float(self.fleet.total_targets())
        if self.audit is not None:
            out["audit_checks"] = float(self.audit.checks)
        return out
