"""The VSOC facade: ingestion -> correlation -> incidents -> response.

Wires the four subsystem stages into one
:class:`SecurityOperationsCenter` running on a shared simulation kernel,
and aggregates every stage's counters into a single flat ``metrics()``
dict (the shape E17 publishes and the determinism tests pin).

Correlation topology scales with the ingest topology:

- ``num_shards == 1``: one :class:`~repro.soc.correlate.CorrelationEngine`
  fed straight off the pipeline (batched by default -- one Python call
  per drained batch via ``add_batch_sink`` / ``observe_batch`` -- with
  ``batched=False`` keeping the one-call-per-event path the differential
  tests compare against);
- ``num_shards > 1``: one **shard-local** engine per ingest shard plus a
  :class:`~repro.soc.correlate.GlobalCampaignMerger` that stitches the
  local verdicts (and, under region sharding, sub-threshold cross-shard
  windows) into fleet-wide campaigns after every pump.  Merged campaigns
  are adopted back into every engine so spread attribution stays exact
  and one event is never correlated twice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set

from repro.core.safety import Asil
from repro.sim import Simulator
from repro.soc.columnar import ColumnarBatch
from repro.soc.correlate import (
    CampaignDetection,
    CorrelationEngine,
    GlobalCampaignMerger,
)
from repro.soc.events import (
    DEFAULT_SOURCE_SEVERITY,
    SecurityEvent,
    source_for_signature,
)
from repro.soc.fleet import FleetModel
from repro.soc.incident import AMENDMENT_KINDS, Amendment, IncidentTracker
from repro.soc.ingest import IngestPipeline, ShedPolicy
from repro.soc.respond import ResponseOrchestrator
from repro.soc.shard import ConservationAudit, ShardedIngestPipeline, ShardKeyFn
from repro.soc.store import DurableStore


class SecurityOperationsCenter:
    """An OEM fleet SOC over a simulated vehicle population.

    ``respond=False`` gives the observe-only configuration used as the
    E17 baseline: everything is ingested and correlated, but no incident
    ever reaches containment -- the fleet burns.

    ``batched`` selects batch delivery end-to-end (list-per-drained-batch
    sinks feeding ``observe_batch``); the per-event path remains only as
    the differential baseline.  ``columnar`` goes one further: drained
    batches are rebuilt once as
    :class:`~repro.soc.columnar.ColumnarBatch` arrays at dispatch and fed
    through ``observe_columnar`` (and, when a store is attached, archived
    via :meth:`~repro.soc.store.EventLog.append_columnar` -- same record
    bytes, so recovery and federation replay are mode-agnostic).  All
    three modes are byte-identical in final analytic state; the
    differential tests pin it.  ``shard_local_correlate`` (default: on
    whenever ``num_shards > 1``) gives every ingest shard its own
    correlator, stitched by a :class:`GlobalCampaignMerger` each pump.
    """

    def __init__(
        self,
        sim: Simulator,
        fleet: FleetModel,
        capacity_eps: float = 250.0,
        queue_capacity: int = 2048,
        batch_size: int = 64,
        shed_policy: ShedPolicy = ShedPolicy.LOWEST_SEVERITY,
        window_s: float = 8.0,
        k: int = 3,
        dedup_window_s: float = 4.0,
        max_lateness_s: float = 2.0,
        respond: bool = True,
        ota_sample: int = 1,
        pump_tick_s: float = 0.25,
        num_shards: int = 1,
        shard_key: Optional[ShardKeyFn] = None,
        audit: bool = True,
        batched: bool = True,
        columnar: bool = False,
        shard_local_correlate: Optional[bool] = None,
        store: Optional[DurableStore] = None,
        snapshot_every_pumps: int = 0,
    ) -> None:
        self.sim = sim
        self.fleet = fleet
        self.pump_tick_s = pump_tick_s
        self.store = store
        self.snapshot_every_pumps = snapshot_every_pumps
        self._pump_no = 0
        # Correlation parameters, kept for federation_profile(): a hub
        # must build replica engines with exactly the region's hygiene
        # settings or replayed verdicts diverge from local ones.
        self.window_s = window_s
        self.k = k
        self.dedup_window_s = dedup_window_s
        self.max_lateness_s = max_lateness_s

        # num_shards=1 keeps the plain single-queue pipeline (the two are
        # behaviorally identical -- the differential tests prove it -- but
        # the plain object is what the pre-shard seed benchmarks pinned).
        if num_shards > 1:
            self.pipeline = ShardedIngestPipeline(
                num_shards=num_shards,
                shard_key=shard_key,
                capacity_eps=capacity_eps,
                queue_capacity=queue_capacity,
                batch_size=batch_size,
                shed_policy=shed_policy,
            )
        else:
            self.pipeline = IngestPipeline(
                capacity_eps=capacity_eps,
                queue_capacity=queue_capacity,
                batch_size=batch_size,
                shed_policy=shed_policy,
            )
        self.audit: Optional[ConservationAudit] = (
            ConservationAudit() if audit else None
        )

        # Archival taps go in *before* the correlator sinks (write-ahead:
        # by the time analytics sees a batch it is already in the log).
        # In columnar mode the tap consumes the same ColumnarBatch the
        # correlators do (append_columnar serializes its retained event
        # list through the unchanged record codec, so the log bytes are
        # mode-independent); sink order within the columnar fan-out
        # preserves write-ahead.
        if store is not None:
            if isinstance(self.pipeline, ShardedIngestPipeline):
                for index, shard in enumerate(self.pipeline.shards):
                    if columnar:
                        shard.add_columnar_sink(
                            self._archive_columnar_handler(index))
                    else:
                        shard.add_batch_sink(self._archive_handler(index))
            elif columnar:
                self.pipeline.add_columnar_sink(
                    self._archive_columnar_handler(0))
            else:
                self.pipeline.add_batch_sink(self._archive_handler(0))

        def _engine() -> CorrelationEngine:
            return CorrelationEngine(
                window_s=window_s, k=k,
                dedup_window_s=dedup_window_s, max_lateness_s=max_lateness_s,
            )

        if shard_local_correlate is None:
            shard_local_correlate = num_shards > 1
        if shard_local_correlate and num_shards > 1:
            self.correlators: List[CorrelationEngine] = [
                _engine() for _ in range(num_shards)
            ]
            self.correlator: Optional[CorrelationEngine] = None
            self.merger: Optional[GlobalCampaignMerger] = (
                GlobalCampaignMerger(window_s=window_s, k=k)
            )
            for index, shard in enumerate(self.pipeline.shards):
                if columnar:
                    shard.add_columnar_sink(
                        self._shard_columnar_handler(index))
                elif batched:
                    shard.add_batch_sink(self._shard_batch_handler(index))
                else:
                    shard.add_sink(self._shard_event_handler(index))
        else:
            self.correlator = _engine()
            self.correlators = [self.correlator]
            self.merger = None
            if columnar:
                self.pipeline.add_columnar_sink(self._on_columnar)
            elif batched:
                self.pipeline.add_batch_sink(self._on_batch)
            else:
                self.pipeline.add_sink(self._on_event)

        self.tracker = IncidentTracker()
        self.responder: Optional[ResponseOrchestrator] = (
            ResponseOrchestrator(sim, self.tracker, fleet,
                                 ota_sample=ota_sample)
            if respond else None
        )
        self._started = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        if not self._started:
            self._started = True
            if self.store is not None:
                # Snapshot 0: recovery always has a base state to restore,
                # even if the process dies before the first periodic one.
                self.save_snapshot()
            self.sim.schedule(self.pump_tick_s, self._pump)

    def _pump(self) -> None:
        self.pipeline.pump(self.sim.now)
        self._finish_pump()
        self.sim.schedule(self.pump_tick_s, self._pump)

    def _finish_pump(self, now: Optional[float] = None) -> None:
        """Post-dispatch bookkeeping every pump shares: audit, campaign
        merge, the durable pump marker, and the periodic snapshot.
        ``now`` defaults to simulation time; service drive mode passes
        the wall-clock handoff time instead."""
        if self.audit is not None:
            self.audit.check(self.pipeline)
        self._merge_campaigns()
        if self.store is not None:
            self._pump_no += 1
            self.store.log.append_mark(
                self.sim.now if now is None else now, self._pump_no)
            if (self.snapshot_every_pumps
                    and self._pump_no % self.snapshot_every_pumps == 0):
                self.save_snapshot()

    def start_service(self) -> None:
        """Arm this center for network-service drive mode
        (:mod:`repro.soc.service`): write snapshot 0 so recovery always
        has a base state, but schedule nothing -- the service's worker
        loop calls :meth:`service_pump` on every queue handoff instead
        of the simulation kernel calling :meth:`_pump` on a tick."""
        if not self._started:
            self._started = True
            if self.store is not None:
                self.save_snapshot()

    def service_pump(self, now: float, sync_log: bool = True,
                     pre_mark: Optional[Callable[[], None]] = None) -> int:
        """One network-service pump: drain *everything* queued at wall
        time ``now``, then run the standard post-dispatch bookkeeping
        (audit, campaign merge, durable pump marker, periodic snapshot).

        This is the drive mode a :class:`~repro.soc.service.WorkerCore`
        uses -- arrival cadence replaces the simulated capacity budget,
        so each handoff batch is dispatched whole and the pump marker
        records the handoff boundary replay must reproduce.  With
        ``sync_log`` (default) the event log is flushed to the OS after
        the marker, so a SIGKILLed worker process loses nothing that was
        acknowledged (the log's own torn-tail recovery covers the kill
        landing mid-append).  Returns the number of events dispatched.

        ``pre_mark``, if given, runs after the batch records are
        archived but *before* the pump marker is appended.  The worker
        auto-restart protocol hangs its handoff journal write here: the
        marker is the commit point restart recovery truncates back to,
        so anything that must be durable-before-commit (the recorded
        acks for this handoff) goes through this hook.
        """
        dispatched = self.pipeline.drain_all(now)
        if pre_mark is not None:
            pre_mark()
        self._finish_pump(now)
        if self.store is not None and sync_log:
            self.store.log.sync()
        return dispatched

    def final_drain(self) -> None:
        """Audited pump + merge rounds until every queue is empty, so all
        in-flight events are scored and accounted before the experiment
        reads its metrics.

        The first round is a normal rate-budgeted pump (the residual
        capacity since the last tick); at a fixed ``sim.now`` further
        pumps would grant zero budget, so the remaining backlog drains
        through :meth:`~repro.soc.ingest.IngestPipeline.drain_all`, which
        is bounded by the events still queued.  A single pump here used
        to strand anything deeper than one capacity budget.
        """
        self.pipeline.pump(self.sim.now)
        self._finish_pump()
        while self.pipeline.queue_depth:
            self.pipeline.drain_all(self.sim.now)
            self._finish_pump()

    # ------------------------------------------------------------------
    # Correlation sinks
    # ------------------------------------------------------------------
    def _on_event(self, now: float, event: SecurityEvent) -> None:
        detection = self.correlator.observe(event)
        if detection is not None:
            self._open_incident(
                detection, DEFAULT_SOURCE_SEVERITY.get(event.source, Asil.A))
        elif self.correlator.is_flagged(event.signature):
            self.tracker.attach_vehicle(event.signature, event.vehicle_id)

    def _on_batch(self, now: float, events: List[SecurityEvent]) -> None:
        correlator = self.correlator
        tracker = self.tracker
        for event, detection in zip(events, correlator.observe_batch(events)):
            if detection is not None:
                self._open_incident(
                    detection,
                    DEFAULT_SOURCE_SEVERITY.get(event.source, Asil.A))
            elif correlator.is_flagged(event.signature):
                tracker.attach_vehicle(event.signature, event.vehicle_id)

    def _on_columnar(self, now: float, batch: ColumnarBatch) -> None:
        """Single-engine columnar sink.  Detections and flagged-signature
        hits come back as batch indices; replaying them merged in index
        order reproduces ``_on_batch``'s exact open/attach interleaving,
        so the incident tracker's state is byte-identical across modes.
        """
        result = self.correlator.observe_columnar(batch, track_hits=True)
        if not result.detections and not result.hits:
            return
        events = batch.events
        tracker = self.tracker
        detections = result.detections
        di = 0
        for idx in result.hits:
            while di < len(detections) and detections[di][0] < idx:
                j, detection = detections[di]
                di += 1
                self._open_incident(
                    detection,
                    DEFAULT_SOURCE_SEVERITY.get(events[j].source, Asil.A))
            event = events[idx]
            tracker.attach_vehicle(event.signature, event.vehicle_id)
        for j, detection in detections[di:]:
            self._open_incident(
                detection,
                DEFAULT_SOURCE_SEVERITY.get(events[j].source, Asil.A))

    def _shard_columnar_handler(self, index: int):
        """Shard-local columnar observe; verdicts surface at merge time
        (no ``track_hits`` -- spread attribution happens in the merger),
        mirroring :meth:`_shard_batch_handler`.  Binds the shard index so
        :meth:`adopt_analytics` rewires recovered engines."""
        def handle(now: float, batch: ColumnarBatch) -> None:
            self.correlators[index].observe_columnar(batch)
        return handle

    def _shard_batch_handler(self, index: int):
        """Shard-local batched observe; verdicts surface at merge time.
        Binds the shard *index*, not the engine object, so adopting
        recovered engines (:meth:`adopt_analytics`) rewires the sinks."""
        def handle(now: float, events: List[SecurityEvent]) -> None:
            self.correlators[index].observe_batch(events)
        return handle

    def _shard_event_handler(self, index: int):
        def handle(now: float, event: SecurityEvent) -> None:
            self.correlators[index].observe(event)
        return handle

    def _archive_handler(self, index: int):
        """Batch-sink tap appending each dispatched batch to the log."""
        log = self.store.log

        def archive(now: float, events: List[SecurityEvent]) -> None:
            log.append_batch(now, index, events)
        return archive

    def _archive_columnar_handler(self, index: int):
        """Columnar-mode archival tap: same log bytes as the batch tap
        (``append_columnar`` serializes the batch's retained events
        through the unchanged codec)."""
        log = self.store.log

        def archive(now: float, batch: ColumnarBatch) -> None:
            log.append_columnar(now, index, batch)
        return archive

    def _merge_campaigns(self) -> None:
        if self.merger is None:
            return
        new_detections, new_vehicles = self.merger.merge(self.correlators)
        for detection in new_detections:
            # Adopt fleet-wide verdicts locally so every engine tracks
            # spread exactly from here on (and never re-fires).
            for engine in self.correlators:
                engine.adopt_campaign(detection)
            self._open_incident(detection, self._base_severity(detection))
        for signature in sorted(new_vehicles):
            for vehicle in sorted(new_vehicles[signature]):
                self.tracker.attach_vehicle(signature, vehicle)

    def _open_incident(self, detection: CampaignDetection,
                       base: Asil) -> None:
        incident = self.tracker.open_from_detection(detection, base)
        if self.responder is not None:
            self.responder.on_detection(incident)

    @staticmethod
    def _base_severity(detection: CampaignDetection) -> Asil:
        """Merged detections carry no triggering event; recover the
        source family from the signature namespace (same defaulting as
        the per-event path)."""
        source = source_for_signature(detection.signature)
        if source is None:
            return Asil.A
        return DEFAULT_SOURCE_SEVERITY.get(source, Asil.A)

    # ------------------------------------------------------------------
    # Durable snapshots / recovery
    # ------------------------------------------------------------------
    def analytics_snapshot(self) -> Dict[str, object]:
        """Canonical dump of every piece of recoverable analytic state,
        taken at a pump boundary (engines, merger, tracker are mutually
        consistent there).  Two runs in the same state produce the same
        bytes under ``json.dumps(..., sort_keys=True)`` -- the equality
        the crash-recovery differential tests compare on.
        """
        return {
            "pump_no": self._pump_no,
            "log_seq": self.store.log.last_seq if self.store else 0,
            "sharded": self.merger is not None,
            "engines": [e.snapshot() for e in self.correlators],
            "merger": self.merger.snapshot() if self.merger else None,
            "tracker": self.tracker.snapshot(),
        }

    def save_snapshot(self):
        """Persist the analytic state; the log is synced first so a
        snapshot never references records less durable than itself."""
        self.store.log.sync()
        return self.store.snapshots.save(self.analytics_snapshot())

    def adopt_analytics(self, recovered: "RecoveredAnalytics") -> None:
        """Swap recovered analytic state into this (running) center.

        The correlator sinks resolve engines through ``self.correlators``
        at call time, so adoption rewires them without touching the
        pipeline; the ingest tier (queues, counters) is not part of the
        recovery contract and keeps running as-is.
        """
        self.correlators = list(recovered.engines)
        self.correlator = (
            None if recovered.merger is not None else self.correlators[0])
        self.merger = recovered.merger
        self.tracker = recovered.tracker
        if self.responder is not None:
            self.responder.tracker = recovered.tracker
        self._pump_no = recovered.pump_no

    # ------------------------------------------------------------------
    # Federation hooks
    # ------------------------------------------------------------------
    def federation_profile(self) -> Dict[str, object]:
        """The shape a :class:`~repro.soc.federation.FederationHub` needs
        to build byte-compatible replica engines for this region: the
        shard fan-out plus every correlation-hygiene parameter."""
        return {
            "num_shards": len(self.correlators),
            "window_s": self.window_s,
            "k": self.k,
            "dedup_window_s": self.dedup_window_s,
            "max_lateness_s": self.max_lateness_s,
        }

    def export_verdicts(self) -> List[CampaignDetection]:
        """This region's campaign verdicts in fire order -- the payload
        of the lightweight verdict-level federation path
        (:meth:`~repro.soc.federation.FederationHub.adopt_verdicts`)."""
        if self.merger is not None:
            return list(self.merger.detections)
        return list(self.correlator.detections)

    def adopt_amendments(self, amendments) -> Dict[str, int]:
        """Consume a hub's reconciliation feed
        (:meth:`~repro.soc.federation.FederationHub.export_amendments`)
        -- dicts or :class:`~repro.soc.incident.Amendment` objects --
        applying each outcome to this region's incident tracker.
        Returns counts per kind plus ``unmatched`` (amendments whose
        signature opened no incident here; a region only ever saw its
        own slice of the fleet, so unmatched is the common case, not an
        error)."""
        counts: Dict[str, int] = {kind: 0 for kind in AMENDMENT_KINDS}
        counts["unmatched"] = 0
        for obj in amendments:
            amendment = (obj if isinstance(obj, Amendment)
                         else Amendment(**obj))
            counts[amendment.kind] += 1
            if not self.tracker.record_amendment(amendment):
                counts["unmatched"] += 1
        return counts

    # ------------------------------------------------------------------
    def flagged_signatures(self) -> Set[str]:
        if self.merger is not None:
            return set(self.merger.flagged_signatures)
        return set(self.correlator.flagged_signatures)

    def precision_recall(self) -> Dict[str, float]:
        """Score flagged signatures against the fleet's ground truth."""
        truth = self.fleet.attack_signatures()
        flagged = self.flagged_signatures()
        tp = len(flagged & truth)
        precision = tp / len(flagged) if flagged else 1.0
        recall = tp / len(truth) if truth else 1.0
        return {"precision": precision, "recall": recall,
                "true_positives": float(tp),
                "false_positives": float(len(flagged) - tp)}

    def _correlator_metrics(self) -> Dict[str, float]:
        if self.merger is None:
            return self.correlator.metrics()
        merged: Dict[str, float] = {}
        for engine in self.correlators:
            for key, value in engine.metrics().items():
                merged[key] = merged.get(key, 0.0) + value
        # Campaign count is a fleet-level fact: adopted local flags would
        # count one campaign once per shard.
        merged["campaigns_flagged"] = float(
            len(self.merger.flagged_signatures))
        return merged

    def metrics(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        out.update(self.pipeline.metrics())
        out.update(self._correlator_metrics())
        out.update(self.precision_recall())
        out["incidents_open"] = float(len(self.tracker.incidents))
        out["mean_time_to_containment_s"] = self.tracker.mean_time_to_containment_s()
        if self.responder is not None:
            out.update(self.responder.metrics())
        out["fleet_compromised"] = float(self.fleet.total_compromised())
        out["fleet_targets"] = float(self.fleet.total_targets())
        if self.audit is not None:
            out["audit_checks"] = float(self.audit.checks)
        return out


# ----------------------------------------------------------------------
# Crash recovery: snapshot + log-suffix replay
# ----------------------------------------------------------------------

@dataclass
class RecoveredAnalytics:
    """Analytic state rebuilt from a :class:`~repro.soc.store.DurableStore`.

    Hand it to :meth:`SecurityOperationsCenter.adopt_analytics` to resume
    a live center, or inspect it directly for post-mortem forensics.
    """

    engines: List[CorrelationEngine]
    merger: Optional[GlobalCampaignMerger]
    tracker: IncidentTracker
    pump_no: int
    log_seq: int
    replayed_batches: int = 0
    replayed_events: int = 0
    replayed_pumps: int = 0

    def flagged_signatures(self) -> Set[str]:
        if self.merger is not None:
            return set(self.merger.flagged_signatures)
        return set(self.engines[0].flagged_signatures)

    def analytics_snapshot(self) -> Dict[str, object]:
        """Same canonical shape as
        :meth:`SecurityOperationsCenter.analytics_snapshot`."""
        return {
            "pump_no": self.pump_no,
            "log_seq": self.log_seq,
            "sharded": self.merger is not None,
            "engines": [e.snapshot() for e in self.engines],
            "merger": self.merger.snapshot() if self.merger else None,
            "tracker": self.tracker.snapshot(),
        }


def recover_soc_state(store: DurableStore,
                      mark_boundary_only: bool = False
                      ) -> RecoveredAnalytics:
    """Rebuild the analytic state a dead SOC process would have had.

    Loads the latest valid snapshot, then replays every log record after
    the snapshot's ``log_seq``: batch records feed ``observe_batch`` on
    the owning shard's engine (with the exact batch boundaries and
    incident attribution of the live dispatch path), and each pump marker
    re-runs the campaign merge, reproducing the live pump/merge cadence.
    The result is byte-identical (under :meth:`RecoveredAnalytics.\
analytics_snapshot`) to the uninterrupted run at the same pump boundary
    -- the tentpole differential in ``tests/test_soc_store.py``.

    With ``mark_boundary_only`` batch records are applied only once the
    pump marker that seals them arrives; a trailing run of batch records
    past the last marker (a handoff the process died inside) is left
    unapplied, so the recovered state lands exactly on a handoff
    boundary.  This is the worker auto-restart contract: the frontend
    resubmits the torn handoff, and re-processing it from the boundary
    is what makes restart byte-identical to the uninterrupted twin
    (:class:`~repro.soc.service.WorkerCore` pairs this with
    :meth:`~repro.soc.store.EventLog.truncate_after_last_mark` so the
    log *bytes* agree too).
    """
    snap = store.snapshots.load_latest()
    if snap is None:
        raise RuntimeError(
            "no recoverable snapshot: the center writes snapshot 0 at "
            "start(), so an empty snapshot store means this DurableStore "
            "never backed a running SOC")
    engines = [CorrelationEngine.from_snapshot(s) for s in snap["engines"]]
    merger = (GlobalCampaignMerger.from_snapshot(snap["merger"])
              if snap["merger"] is not None else None)
    tracker = IncidentTracker.from_snapshot(snap["tracker"])
    pump_no = snap["pump_no"]
    last_seq = snap["log_seq"]
    batches = events_replayed = pumps = 0

    def _apply_batch(record) -> None:
        nonlocal batches, events_replayed
        batches += 1
        events_replayed += len(record.events)
        batch = list(record.events)
        if merger is None:
            engine = engines[0]
            for event, detection in zip(batch,
                                        engine.observe_batch(batch)):
                if detection is not None:
                    tracker.open_from_detection(
                        detection,
                        DEFAULT_SOURCE_SEVERITY.get(event.source,
                                                    Asil.A))
                elif engine.is_flagged(event.signature):
                    tracker.attach_vehicle(event.signature,
                                           event.vehicle_id)
        else:
            engines[record.shard].observe_batch(batch)

    pending: List = []  # batch records awaiting their sealing marker
    for record in store.log.replay(after_seq=snap["log_seq"]):
        if record.kind == "batch":
            if mark_boundary_only:
                pending.append(record)
                continue
            last_seq = record.seq
            _apply_batch(record)
        else:  # pump marker: the live run merged campaigns here
            for sealed in pending:
                _apply_batch(sealed)
            pending.clear()
            last_seq = record.seq
            pumps += 1
            pump_no = record.pump_no
            if merger is not None:
                new_detections, new_vehicles = merger.merge(engines)
                for detection in new_detections:
                    for engine in engines:
                        engine.adopt_campaign(detection)
                    tracker.open_from_detection(
                        detection,
                        SecurityOperationsCenter._base_severity(detection))
                for signature in sorted(new_vehicles):
                    for vehicle in sorted(new_vehicles[signature]):
                        tracker.attach_vehicle(signature, vehicle)
    # mark_boundary_only: anything still pending is a torn handoff past
    # the last marker -- deliberately not applied (see docstring).

    return RecoveredAnalytics(
        engines=engines, merger=merger, tracker=tracker,
        pump_no=pump_no, log_seq=last_seq,
        replayed_batches=batches, replayed_events=events_replayed,
        replayed_pumps=pumps)
