"""The VSOC facade: ingestion -> correlation -> incidents -> response.

Wires the four subsystem stages into one
:class:`SecurityOperationsCenter` running on a shared simulation kernel,
and aggregates every stage's counters into a single flat ``metrics()``
dict (the shape E17 publishes and the determinism tests pin).

Correlation topology scales with the ingest topology:

- ``num_shards == 1``: one :class:`~repro.soc.correlate.CorrelationEngine`
  fed straight off the pipeline (batched by default -- one Python call
  per drained batch via ``add_batch_sink`` / ``observe_batch`` -- with
  ``batched=False`` keeping the one-call-per-event path the differential
  tests compare against);
- ``num_shards > 1``: one **shard-local** engine per ingest shard plus a
  :class:`~repro.soc.correlate.GlobalCampaignMerger` that stitches the
  local verdicts (and, under region sharding, sub-threshold cross-shard
  windows) into fleet-wide campaigns after every pump.  Merged campaigns
  are adopted back into every engine so spread attribution stays exact
  and one event is never correlated twice.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.core.safety import Asil
from repro.sim import Simulator
from repro.soc.correlate import (
    CampaignDetection,
    CorrelationEngine,
    GlobalCampaignMerger,
)
from repro.soc.events import (
    DEFAULT_SOURCE_SEVERITY,
    SecurityEvent,
    source_for_signature,
)
from repro.soc.fleet import FleetModel
from repro.soc.incident import IncidentTracker
from repro.soc.ingest import IngestPipeline, ShedPolicy
from repro.soc.respond import ResponseOrchestrator
from repro.soc.shard import ConservationAudit, ShardedIngestPipeline, ShardKeyFn


class SecurityOperationsCenter:
    """An OEM fleet SOC over a simulated vehicle population.

    ``respond=False`` gives the observe-only configuration used as the
    E17 baseline: everything is ingested and correlated, but no incident
    ever reaches containment -- the fleet burns.

    ``batched`` selects batch delivery end-to-end (list-per-drained-batch
    sinks feeding ``observe_batch``); the per-event path remains only as
    the differential baseline.  ``shard_local_correlate`` (default: on
    whenever ``num_shards > 1``) gives every ingest shard its own
    correlator, stitched by a :class:`GlobalCampaignMerger` each pump.
    """

    def __init__(
        self,
        sim: Simulator,
        fleet: FleetModel,
        capacity_eps: float = 250.0,
        queue_capacity: int = 2048,
        batch_size: int = 64,
        shed_policy: ShedPolicy = ShedPolicy.LOWEST_SEVERITY,
        window_s: float = 8.0,
        k: int = 3,
        dedup_window_s: float = 4.0,
        max_lateness_s: float = 2.0,
        respond: bool = True,
        ota_sample: int = 1,
        pump_tick_s: float = 0.25,
        num_shards: int = 1,
        shard_key: Optional[ShardKeyFn] = None,
        audit: bool = True,
        batched: bool = True,
        shard_local_correlate: Optional[bool] = None,
    ) -> None:
        self.sim = sim
        self.fleet = fleet
        self.pump_tick_s = pump_tick_s

        # num_shards=1 keeps the plain single-queue pipeline (the two are
        # behaviorally identical -- the differential tests prove it -- but
        # the plain object is what the pre-shard seed benchmarks pinned).
        if num_shards > 1:
            self.pipeline = ShardedIngestPipeline(
                num_shards=num_shards,
                shard_key=shard_key,
                capacity_eps=capacity_eps,
                queue_capacity=queue_capacity,
                batch_size=batch_size,
                shed_policy=shed_policy,
            )
        else:
            self.pipeline = IngestPipeline(
                capacity_eps=capacity_eps,
                queue_capacity=queue_capacity,
                batch_size=batch_size,
                shed_policy=shed_policy,
            )
        self.audit: Optional[ConservationAudit] = (
            ConservationAudit() if audit else None
        )

        def _engine() -> CorrelationEngine:
            return CorrelationEngine(
                window_s=window_s, k=k,
                dedup_window_s=dedup_window_s, max_lateness_s=max_lateness_s,
            )

        if shard_local_correlate is None:
            shard_local_correlate = num_shards > 1
        if shard_local_correlate and num_shards > 1:
            self.correlators: List[CorrelationEngine] = [
                _engine() for _ in range(num_shards)
            ]
            self.correlator: Optional[CorrelationEngine] = None
            self.merger: Optional[GlobalCampaignMerger] = (
                GlobalCampaignMerger(window_s=window_s, k=k)
            )
            for shard, engine in zip(self.pipeline.shards, self.correlators):
                if batched:
                    shard.add_batch_sink(self._shard_batch_handler(engine))
                else:
                    shard.add_sink(self._shard_event_handler(engine))
        else:
            self.correlator = _engine()
            self.correlators = [self.correlator]
            self.merger = None
            if batched:
                self.pipeline.add_batch_sink(self._on_batch)
            else:
                self.pipeline.add_sink(self._on_event)

        self.tracker = IncidentTracker()
        self.responder: Optional[ResponseOrchestrator] = (
            ResponseOrchestrator(sim, self.tracker, fleet,
                                 ota_sample=ota_sample)
            if respond else None
        )
        self._started = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        if not self._started:
            self._started = True
            self.sim.schedule(self.pump_tick_s, self._pump)

    def _pump(self) -> None:
        self.pipeline.pump(self.sim.now)
        if self.audit is not None:
            self.audit.check(self.pipeline)
        self._merge_campaigns()
        self.sim.schedule(self.pump_tick_s, self._pump)

    def final_drain(self) -> None:
        """One last audited pump + campaign merge so in-flight events are
        accounted before scoring (E17 calls this after the sim ends)."""
        self.pipeline.pump(self.sim.now)
        if self.audit is not None:
            self.audit.check(self.pipeline)
        self._merge_campaigns()

    # ------------------------------------------------------------------
    # Correlation sinks
    # ------------------------------------------------------------------
    def _on_event(self, now: float, event: SecurityEvent) -> None:
        detection = self.correlator.observe(event)
        if detection is not None:
            self._open_incident(
                detection, DEFAULT_SOURCE_SEVERITY.get(event.source, Asil.A))
        elif self.correlator.is_flagged(event.signature):
            self.tracker.attach_vehicle(event.signature, event.vehicle_id)

    def _on_batch(self, now: float, events: List[SecurityEvent]) -> None:
        correlator = self.correlator
        tracker = self.tracker
        for event, detection in zip(events, correlator.observe_batch(events)):
            if detection is not None:
                self._open_incident(
                    detection,
                    DEFAULT_SOURCE_SEVERITY.get(event.source, Asil.A))
            elif correlator.is_flagged(event.signature):
                tracker.attach_vehicle(event.signature, event.vehicle_id)

    def _shard_batch_handler(self, engine: CorrelationEngine):
        """Shard-local batched observe; verdicts surface at merge time."""
        def handle(now: float, events: List[SecurityEvent]) -> None:
            engine.observe_batch(events)
        return handle

    def _shard_event_handler(self, engine: CorrelationEngine):
        def handle(now: float, event: SecurityEvent) -> None:
            engine.observe(event)
        return handle

    def _merge_campaigns(self) -> None:
        if self.merger is None:
            return
        new_detections, new_vehicles = self.merger.merge(self.correlators)
        for detection in new_detections:
            # Adopt fleet-wide verdicts locally so every engine tracks
            # spread exactly from here on (and never re-fires).
            for engine in self.correlators:
                engine.adopt_campaign(detection)
            self._open_incident(detection, self._base_severity(detection))
        for signature in sorted(new_vehicles):
            for vehicle in sorted(new_vehicles[signature]):
                self.tracker.attach_vehicle(signature, vehicle)

    def _open_incident(self, detection: CampaignDetection,
                       base: Asil) -> None:
        incident = self.tracker.open_from_detection(detection, base)
        if self.responder is not None:
            self.responder.on_detection(incident)

    @staticmethod
    def _base_severity(detection: CampaignDetection) -> Asil:
        """Merged detections carry no triggering event; recover the
        source family from the signature namespace (same defaulting as
        the per-event path)."""
        source = source_for_signature(detection.signature)
        if source is None:
            return Asil.A
        return DEFAULT_SOURCE_SEVERITY.get(source, Asil.A)

    # ------------------------------------------------------------------
    def flagged_signatures(self) -> Set[str]:
        if self.merger is not None:
            return set(self.merger.flagged_signatures)
        return set(self.correlator.flagged_signatures)

    def precision_recall(self) -> Dict[str, float]:
        """Score flagged signatures against the fleet's ground truth."""
        truth = self.fleet.attack_signatures()
        flagged = self.flagged_signatures()
        tp = len(flagged & truth)
        precision = tp / len(flagged) if flagged else 1.0
        recall = tp / len(truth) if truth else 1.0
        return {"precision": precision, "recall": recall,
                "true_positives": float(tp),
                "false_positives": float(len(flagged) - tp)}

    def _correlator_metrics(self) -> Dict[str, float]:
        if self.merger is None:
            return self.correlator.metrics()
        merged: Dict[str, float] = {}
        for engine in self.correlators:
            for key, value in engine.metrics().items():
                merged[key] = merged.get(key, 0.0) + value
        # Campaign count is a fleet-level fact: adopted local flags would
        # count one campaign once per shard.
        merged["campaigns_flagged"] = float(
            len(self.merger.flagged_signatures))
        return merged

    def metrics(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        out.update(self.pipeline.metrics())
        out.update(self._correlator_metrics())
        out.update(self.precision_recall())
        out["incidents_open"] = float(len(self.tracker.incidents))
        out["mean_time_to_containment_s"] = self.tracker.mean_time_to_containment_s()
        if self.responder is not None:
            out.update(self.responder.metrics())
        out["fleet_compromised"] = float(self.fleet.total_compromised())
        out["fleet_targets"] = float(self.fleet.total_targets())
        if self.audit is not None:
            out["audit_checks"] = float(self.audit.checks)
        return out
