"""Columnar batch representation for the correlate hot path.

``BENCH_E17.json`` showed ``observe_batch`` at ~0.94x the per-event
path: batching amortized Python *dispatch* but every event still paid
Python-level dict/heap work.  The columnar hot path restructures a
drained batch as numpy arrays **once, at drain time** -- where the
pipeline is already touching every event for latency accounting -- so
the correlator can process the whole batch with a handful of C-level
operations (:meth:`repro.soc.correlate.CorrelationEngine.observe_columnar`).

Layout decisions, each load-bearing for either speed or byte-identity:

- **Times stay Python floats where state is built.**  ``t_list``,
  ``id_time`` and ``key_time`` hold the events' own float objects, so
  every value that lands in engine ledgers is bit-identical to what the
  per-event path would have stored (numpy round-trips are exact for
  float64, but ``-0.0``/``0.0`` tie-breaking in reductions is not worth
  auditing -- ``t_max`` is therefore ``max(t_list)``, which keeps the
  per-event "only strictly-greater replaces" watermark semantics:
  Python's ``max`` returns the *first* maximal element).
- **Vehicles are an object array of the original strings**, not interned
  ids: signature windows outlive batches, so interning vehicles would
  need an unbounded (fleet-sized) global table.  Object arrays give the
  C-level gather/group machinery while the strings themselves flow into
  window state unchanged.
- **Signatures are interned to int32** for argsort grouping -- the
  signature universe is small and the interner is batch-producer-local
  (the correlator never depends on ids being stable across producers;
  they only order one batch's group loop).
- **Hazard flags are precomputed**: ``ids_unique`` / ``keys_unique``
  (within-batch duplicate event ids or dedup keys force the scalar
  fallback), ``times_sorted`` (lets the engine skip per-group order
  checks), and ``t_min``/``t_max``/``sev_min`` (one-comparison rejects
  for the lateness, sweep and severity vector work).

The batch also keeps the original ``events`` list: archival taps
serialize from it (byte-identical to the pre-columnar record codec by
construction), the scalar fallback replays it, and incident attribution
reads sources from it.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.soc.events import SecurityEvent

__all__ = ["StringInterner", "ColumnarBatch", "build_batch",
           "BLOOM_BITS", "BLOOM_BYTES"]

# Ledger-screen bloom filter geometry (one bit per hash, bit-packed).
# 2^23 bits = 1 MiB per filter: small enough to live in L2, so the
# random gather/scatter the screens do stays ~30 ns/event, while a
# 100k-entry ledger keeps the false-suspect rate ~1%.
BLOOM_BITS = 1 << 23
BLOOM_BYTES = BLOOM_BITS >> 3
_BLOOM_MASK = np.int64(BLOOM_BITS - 1)


def _bloom_coords(hashes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """(byte index, bit mask) arrays for a batch of 64-bit hashes."""
    hh = hashes & _BLOOM_MASK
    return hh >> 3, np.left_shift(np.uint8(1), (hh & 7).astype(np.uint8))


class StringInterner:
    """Monotonic string -> int32 table (``table[i]`` inverts it).

    Ids are only meaningful to the interner that issued them; the engine
    treats them as batch-local grouping labels and resolves everything
    observable back through strings.
    """

    __slots__ = ("ids", "table")

    def __init__(self) -> None:
        self.ids: Dict[str, int] = {}
        self.table: List[str] = []

    def __len__(self) -> int:
        return len(self.table)

    def intern(self, s: str) -> int:
        i = self.ids.get(s)
        if i is None:
            i = len(self.table)
            self.ids[s] = i
            self.table.append(s)
        return i

    def intern_many(self, strings: Sequence[str]) -> np.ndarray:
        """Intern a batch of strings; one C-level pass when all are
        already known (the steady state -- signatures recur)."""
        raw = list(map(self.ids.get, strings))
        if None in raw:
            intern = self.intern
            for i, v in enumerate(raw):
                if v is None:
                    raw[i] = intern(strings[i])
        return np.array(raw, dtype=np.int32)


class ColumnarBatch:
    """One drained batch, restructured for vectorized correlation."""

    __slots__ = (
        "events", "n", "t", "t_list", "t_min", "t_max", "sev", "sev_min",
        "sig_ids", "veh_obj", "eid_list", "id_time", "ids_unique",
        "id_bloom_byte", "id_bloom_bit", "keys", "key_time",
        "key_bloom_byte", "key_bloom_bit", "keys_unique",
        "dup_key_idx", "order", "group_bounds", "group_sigs",
        "times_sorted", "interner",
    )

    def __init__(self) -> None:  # populated by build_batch
        self.events: List[SecurityEvent] = []
        self.n = 0

    def __len__(self) -> int:
        return self.n


def build_batch(events: Sequence[SecurityEvent],
                interner: StringInterner) -> ColumnarBatch:
    """Build the columnar form of one drained batch (one pass over the
    event objects; everything downstream is array work)."""
    cb = ColumnarBatch()
    cb.events = list(events)
    n = cb.n = len(cb.events)
    cb.interner = interner
    if n == 0:
        cb.t = np.empty(0, dtype=np.float64)
        cb.t_list = []
        cb.t_min = cb.t_max = float("inf")
        cb.sev = np.empty(0, dtype=np.int16)
        cb.sev_min = 0
        cb.sig_ids = np.empty(0, dtype=np.int32)
        cb.veh_obj = np.empty(0, dtype=object)
        cb.eid_list = []
        cb.id_time = {}
        cb.ids_unique = True
        cb.id_bloom_byte = np.empty(0, dtype=np.int64)
        cb.id_bloom_bit = np.empty(0, dtype=np.uint8)
        cb.keys = []
        cb.key_time = {}
        cb.key_bloom_byte = np.empty(0, dtype=np.int64)
        cb.key_bloom_bit = np.empty(0, dtype=np.uint8)
        cb.keys_unique = True
        cb.dup_key_idx = []
        cb.order = np.empty(0, dtype=np.intp)
        cb.group_bounds = [0]
        cb.group_sigs = []
        cb.times_sorted = True
        return cb

    evs = cb.events
    t_list = cb.t_list = [e.time for e in evs]
    eids = cb.eid_list = [e.event_id for e in evs]
    vehs = [e.vehicle_id for e in evs]
    sigs = [e.signature for e in evs]

    t = cb.t = np.array(t_list, dtype=np.float64)
    cb.sev = np.fromiter((e.severity for e in evs), dtype=np.int16, count=n)
    cb.sev_min = int(cb.sev.min())
    # Python max/min keep first-maximal tie-breaking (watermark semantics).
    cb.t_max = max(t_list)
    cb.t_min = min(t_list)

    cb.sig_ids = interner.intern_many(sigs)
    cb.veh_obj = np.array(vehs, dtype=object)
    # Dedup-key fingerprint: vehicle hash mixed with the signature id by
    # an odd multiplier (injective mod 2**64), so two keys sharing a
    # vehicle never collide in the full hash.  Cheaper than hashing the
    # key tuples (tuple hash re-derives both member hashes per key).
    hv = np.fromiter(map(hash, vehs), dtype=np.int64, count=n)
    cb.key_bloom_byte, cb.key_bloom_bit = _bloom_coords(
        hv ^ (cb.sig_ids.astype(np.int64) * np.int64(-0x61C8864680B583EB)))

    cb.id_time = dict(zip(eids, t_list))
    cb.ids_unique = len(cb.id_time) == n
    # Bloom coordinates for the engine's chunked-ledger screens.  Equal
    # strings always hash equal, so a bloom probe can never miss a real
    # duplicate; a colliding bit merely makes the engine double-check
    # that element exactly.  The str hashes are cached by the dict
    # build above, so the hash pass is a cheap re-read.
    cb.id_bloom_byte, cb.id_bloom_bit = _bloom_coords(
        np.fromiter(map(hash, eids), dtype=np.int64, count=n))
    keys: List[Tuple[str, str]] = list(zip(vehs, sigs))
    cb.keys = keys
    cb.key_time = dict(zip(keys, t_list))
    cb.keys_unique = len(cb.key_time) == n
    if cb.keys_unique:
        cb.dup_key_idx = []
    else:
        # Every occurrence (first included) of any repeated dedup key,
        # in stream order: the engine walks them sequentially so later
        # occurrences see earlier ones' ledger effect exactly.
        counts: Dict[Tuple[str, str], int] = {}
        for key in keys:
            counts[key] = counts.get(key, 0) + 1
        cb.dup_key_idx = [i for i, key in enumerate(keys)
                          if counts[key] > 1]

    order = cb.order = np.argsort(cb.sig_ids, kind="stable")
    sig_sorted = cb.sig_ids[order]
    cuts = np.flatnonzero(sig_sorted[1:] != sig_sorted[:-1]) + 1
    bounds = cb.group_bounds = [0, *cuts.tolist(), n]
    table = interner.table
    cb.group_sigs = [table[sig_sorted[b]] for b in bounds[:-1]]
    cb.times_sorted = bool(n < 2 or np.all(t[1:] >= t[:-1]))
    return cb
