"""Seeded fault-injection harness for the federated VSOC.

Robustness claims elsewhere in this repo are each pinned by a dedicated
test (a partition cell, a SIGKILL differential, a torn-tail recovery).
This module turns those one-off scenarios into a reusable layer: a
:class:`FaultPlan` -- a seeded, declarative schedule of faults -- driven
against a *live* federated scene or ingest service by a runner that
asserts the system's conservation invariants at every heal point and
full convergence at the end.  The same plan replayed with the same seed
produces the same faults at the same times, so a chaos failure is a
reproducible bug report, not a flake.

Fault kinds:

- ``region_outage``: one region's WAN link down for ``[at_s, until_s)``
  -- sends refused, in-flight blobs lost, shipper cursor rewound to the
  receiver's applied frontier so the durable log retransmits (the loss
  model a real TCP reset implies).
- ``wan_degrade``: lag / jitter / duplication spike on one region's
  channel for a window, reverted exactly at heal.
- ``torn_shipment``: the next delivered blob on one region's link
  arrives with a flipped byte; the receiver's CRC check rejects it
  whole and a scheduled repair tick rewinds the shipper cursor -- the
  ARQ role a real transport's retransmit plays.
- ``worker_sigkill``: SIGKILL one ingest worker (or all) at a driver
  round; the supervisor restarts it from its durable store and replays
  unacked handoffs (:class:`ServiceChaosRunner` only -- it is a
  service-side fault, meaningless against a hub).

Invariant probes (:class:`ChaosInvariantViolation` on failure):

- **Receiver conservation** at every heal point and at the end:
  ``records_received == duplicates + applied_seq + buffered`` per
  region -- transport chaos may delay or repeat, never leak.
- **Convergence / byte-identity** at the end: the hub drains to zero
  unapplied records and its analytics snapshot is byte-identical to a
  fresh strict hub fed the union of the regions' durable logs directly
  (chaos on the wire must be invisible in the state).
- **Amendment tie-out**: every provisional verdict is classified
  exactly once -- ``confirmed + amended + retracted ==
  provisional_verdicts`` -- and the journal agrees with the counters.
- **Zero ACK loss** (service): after heal + drain, every routed batch
  is acked; the conservation audit holds at every restart.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.soc.federation import FederationHub

FAULT_KINDS = ("region_outage", "wan_degrade", "torn_shipment",
               "worker_sigkill")
_WINDOWED = ("region_outage", "wan_degrade")


class ChaosInvariantViolation(AssertionError):
    """An invariant probe failed: the fault schedule found a real bug."""


@dataclass(frozen=True)
class Fault:
    """One scheduled fault.  ``target`` is a region name (federation
    faults) or a worker-shard index as a string (``worker_sigkill``;
    ``None`` kills every worker).  For ``worker_sigkill`` the times are
    *driver rounds*, not seconds -- the service driver is round-based."""

    kind: str
    at_s: float
    until_s: Optional[float] = None
    target: Optional[str] = None
    lag_add_s: float = 0.0
    jitter_add_s: float = 0.0
    duplicate_add_p: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.at_s < 0:
            raise ValueError("at_s must be >= 0")
        if self.kind in _WINDOWED:
            if self.until_s is None or self.until_s <= self.at_s:
                raise ValueError(f"{self.kind} needs until_s > at_s")
            if self.target is None:
                raise ValueError(f"{self.kind} needs a target region")
        elif self.until_s is not None:
            raise ValueError(f"{self.kind} is instantaneous (no until_s)")
        if self.kind == "torn_shipment" and self.target is None:
            raise ValueError("torn_shipment needs a target region")
        if self.kind == "wan_degrade" and not (
                self.lag_add_s > 0 or self.jitter_add_s > 0
                or self.duplicate_add_p > 0):
            raise ValueError("wan_degrade needs a positive delta")
        if self.lag_add_s < 0 or self.jitter_add_s < 0 \
                or not (0.0 <= self.duplicate_add_p <= 1.0):
            raise ValueError("bad degrade deltas")

    @property
    def heal_s(self) -> float:
        """When the fault stops acting (instantaneous faults heal at
        injection -- their *recovery* is what the probes then watch)."""
        return self.until_s if self.until_s is not None else self.at_s

    def as_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind, "at_s": self.at_s, "until_s": self.until_s,
            "target": self.target, "lag_add_s": self.lag_add_s,
            "jitter_add_s": self.jitter_add_s,
            "duplicate_add_p": self.duplicate_add_p,
        }


class FaultPlan:
    """An immutable, time-sorted fault schedule."""

    def __init__(self, faults: Sequence[Fault]) -> None:
        self.faults: Tuple[Fault, ...] = tuple(
            sorted(faults, key=lambda f: (f.at_s, f.heal_s, f.kind,
                                          f.target or "")))

    @classmethod
    def generate(cls, rng, duration_s: float, regions: Sequence[str], *,
                 num_workers: int = 0,
                 n_outages: int = 1, n_degrades: int = 1, n_torn: int = 1,
                 n_kills: int = 0, kill_rounds: int = 16) -> "FaultPlan":
        """Draw a reproducible plan from a seeded ``random.Random``.

        Windowed faults land inside ``[0.15, 0.6] * duration_s`` and
        heal by ``0.85 * duration_s`` -- chaos must stop in time for the
        end-of-run convergence probes to mean something.  Kill rounds
        are drawn over the service driver's round grid.
        """
        if not regions and (n_outages or n_degrades or n_torn):
            raise ValueError("federation faults need regions")
        faults: List[Fault] = []
        lo, hi, heal_by = (0.15 * duration_s, 0.6 * duration_s,
                           0.85 * duration_s)
        for _ in range(n_outages):
            start = rng.uniform(lo, hi)
            faults.append(Fault(
                kind="region_outage", at_s=start,
                until_s=min(heal_by, start + rng.uniform(
                    0.1 * duration_s, 0.3 * duration_s)),
                target=rng.choice(list(regions))))
        for _ in range(n_degrades):
            start = rng.uniform(lo, hi)
            faults.append(Fault(
                kind="wan_degrade", at_s=start,
                until_s=min(heal_by, start + rng.uniform(
                    0.1 * duration_s, 0.25 * duration_s)),
                target=rng.choice(list(regions)),
                lag_add_s=rng.uniform(0.2, 1.0),
                jitter_add_s=rng.uniform(0.0, 0.3),
                duplicate_add_p=rng.uniform(0.0, 0.2)))
        for _ in range(n_torn):
            faults.append(Fault(kind="torn_shipment",
                                at_s=rng.uniform(lo, hi),
                                target=rng.choice(list(regions))))
        for _ in range(n_kills):
            target = (str(rng.randrange(num_workers))
                      if num_workers and rng.random() < 0.5 else None)
            faults.append(Fault(kind="worker_sigkill",
                                at_s=float(rng.randrange(1, kill_rounds)),
                                target=target))
        return cls(faults)

    def faults_of(self, *kinds: str) -> List[Fault]:
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {kind!r}")
        return [f for f in self.faults if f.kind in kinds]

    def heal_points(self) -> List[float]:
        return sorted({f.heal_s for f in self.faults})

    def split(self) -> Tuple["FaultPlan", "FaultPlan"]:
        """(federation faults, service faults) -- one generated plan can
        feed both runners."""
        service = self.faults_of("worker_sigkill")
        federation = [f for f in self.faults if f.kind != "worker_sigkill"]
        return FaultPlan(federation), FaultPlan(service)

    def as_dict(self) -> Dict[str, object]:
        return {"faults": [f.as_dict() for f in self.faults]}

    def __len__(self) -> int:
        return len(self.faults)


def _canon(obj) -> str:
    return json.dumps(obj, sort_keys=True)


def _reference_snapshot(scene) -> str:
    """The oracle: a fresh strict hub fed every region's durable log
    directly (no wire at all), finalized, canonically dumped."""
    runtime = next(iter(scene.regions.values()))
    hub = FederationHub.from_profile(
        list(scene.regions.keys()), runtime.center.federation_profile())
    for name, rt in scene.regions.items():
        receiver = hub.receivers[name]
        for record in rt.store.log.tail(after_seq=0):
            receiver.buffer[record.seq] = record
    hub.finalize(0.0)
    return _canon(hub.analytics_snapshot())


class FederationChaosRunner:
    """Drive a :class:`~repro.experiments.e18_federation.FederatedScene`
    under a :class:`FaultPlan`, probing invariants at every heal point
    and proving convergence + byte-identity at the end.

    The runner owns the end-of-run sequence (it replaces
    ``scene.run``): after the simulated duration it rewinds every
    shipper cursor to its receiver's applied frontier -- the durable
    log is the retransmit buffer, so one final re-offer repairs any
    loss the chaos caused -- and only then runs the scene's normal
    finish (drain, ship, deliver, finalize).
    """

    def __init__(self, scene, plan: FaultPlan) -> None:
        if plan.faults_of("worker_sigkill"):
            raise ValueError(
                "worker_sigkill is a service fault; use "
                "ServiceChaosRunner (FaultPlan.split() separates them)")
        for fault in plan.faults:
            if fault.target is not None and fault.target not in scene.regions:
                raise ValueError(f"fault targets unknown region "
                                 f"{fault.target!r}")
        self.scene = scene
        self.plan = plan
        self.report: Dict[str, object] = {
            "plan": plan.as_dict(),
            "probes": [],
            "violations": [],
            "faults_injected": 0,
        }
        self._reverts: List[Tuple[float, Fault]] = []

    # -- fault handlers -------------------------------------------------
    def _inject_outage(self, fault: Fault) -> None:
        runtime = self.scene.regions[fault.target]
        runtime.channel.outages = runtime.channel.outages + (
            (fault.at_s, fault.until_s),)
        # The link died: in-flight blobs are gone; the cursor rewinds so
        # the log re-ships them after heal (dedup absorbs any overlap).
        runtime.channel.drop_in_flight()
        self._rewind(fault.target)
        self.report["faults_injected"] += 1

    def _inject_degrade(self, fault: Fault) -> None:
        channel = self.scene.regions[fault.target].channel
        channel.lag_s += fault.lag_add_s
        channel.jitter_s += fault.jitter_add_s
        applied_p = min(1.0, channel.duplicate_p + fault.duplicate_add_p) \
            - channel.duplicate_p
        channel.duplicate_p += applied_p
        self.scene.sim.schedule_at(fault.until_s, self._revert_degrade,
                                   fault, applied_p, priority=2)
        self.report["faults_injected"] += 1

    def _revert_degrade(self, fault: Fault, applied_p: float) -> None:
        channel = self.scene.regions[fault.target].channel
        channel.lag_s = max(0.0, channel.lag_s - fault.lag_add_s)
        channel.jitter_s = max(0.0, channel.jitter_s - fault.jitter_add_s)
        channel.duplicate_p = max(0.0, channel.duplicate_p - applied_p)

    def _inject_torn(self, fault: Fault) -> None:
        self.scene.regions[fault.target].channel.corrupt_next(1)
        # ARQ repair: after the torn blob has had time to deliver and be
        # rejected, rewind the cursor so the log re-ships its records.
        self.scene.sim.schedule_at(
            self.scene.sim.now + 2.0 * self.scene.ship_tick_s,
            self._rewind, fault.target, priority=2)
        self.report["faults_injected"] += 1

    def _rewind(self, region: str) -> None:
        runtime = self.scene.regions[region]
        applied = self.scene.hub.receivers[region].applied_seq
        if runtime.shipper.shipped_seq > applied:
            runtime.shipper.shipped_seq = applied

    # -- probes ---------------------------------------------------------
    def _probe(self, label: str, at_s: float) -> None:
        failures: List[str] = []
        hub = self.scene.hub
        for name, receiver in hub.receivers.items():
            expected = (receiver.duplicates + receiver.applied_seq
                        + len(receiver.buffer))
            if receiver.records_received != expected:
                failures.append(
                    f"receiver conservation broken for {name}: "
                    f"received={receiver.records_received} != "
                    f"duplicates+applied+buffered={expected}")
        if not hub.episode_active:
            classified = (hub.amendments_confirmed + hub.amendments_amended
                          + hub.amendments_retracted)
            if classified != hub.provisional_verdicts:
                failures.append(
                    f"amendment tie-out broken: {classified} classified "
                    f"vs {hub.provisional_verdicts} provisional")
        self.report["probes"].append(
            {"label": label, "at_s": at_s, "ok": not failures})
        self.report["violations"].extend(failures)

    def _end_probes(self) -> None:
        hub = self.scene.hub
        if hub.unapplied() != 0:
            self.report["violations"].append(
                f"hub did not converge: {hub.unapplied()} unapplied "
                f"records after finalize")
        classified = (hub.amendments_confirmed + hub.amendments_amended
                      + hub.amendments_retracted)
        if classified != hub.provisional_verdicts:
            self.report["violations"].append(
                f"amendment tie-out broken at end: {classified} vs "
                f"{hub.provisional_verdicts}")
        if len(hub.amendments) != classified:
            self.report["violations"].append(
                "amendment journal length disagrees with counters")
        self._probe("end", self.scene.sim.now)
        snapshot = _canon(hub.analytics_snapshot())
        if snapshot != _reference_snapshot(self.scene):
            self.report["violations"].append(
                "hub snapshot diverged from the union-log reference "
                "after heal")
        self.report["hub_metrics"] = hub.metrics()

    # -- drive ----------------------------------------------------------
    def run(self, duration_s: float) -> Dict[str, object]:
        sim = self.scene.sim
        for fault in self.plan.faults:
            if fault.heal_s >= duration_s:
                raise ValueError(
                    f"fault heals at {fault.heal_s}s, past the run "
                    f"duration {duration_s}s -- probes need quiet time")
            handler = {
                "region_outage": self._inject_outage,
                "wan_degrade": self._inject_degrade,
                "torn_shipment": self._inject_torn,
            }[fault.kind]
            sim.schedule_at(fault.at_s, handler, fault, priority=2)
        for heal_s in self.plan.heal_points():
            # Probe one ship tick after heal so a post-heal delivery and
            # hub advance have happened.
            sim.schedule_at(heal_s + 2.0 * self.scene.ship_tick_s,
                            self._probe, "heal", heal_s, priority=3)
        self.scene.start()
        sim.run_until(duration_s)
        for region in self.scene.regions:
            self._rewind(region)
        self.scene.finish()
        self._end_probes()
        return self.report

    def assert_clean(self) -> None:
        if self.report["violations"]:
            raise ChaosInvariantViolation(
                "; ".join(self.report["violations"]))


class ServiceChaosRunner:
    """Drive an :class:`~repro.soc.service.IngestService` round-by-round
    (the deterministic driver idiom from the hardening tests) while a
    plan's ``worker_sigkill`` faults crash workers mid-load, asserting
    the conservation audit at every restart and zero admitted-batch ACK
    loss at the end."""

    def __init__(self, plan: FaultPlan, root, *, mode: str = "inline",
                 num_workers: int = 2, rounds: int = 16, clients: int = 3,
                 config=None) -> None:
        bad = [f for f in plan.faults if f.kind != "worker_sigkill"]
        if bad:
            raise ValueError(
                f"ServiceChaosRunner only takes worker_sigkill faults "
                f"(got {bad[0].kind!r}); use FaultPlan.split()")
        self.plan = plan
        self.root = root
        self.mode = mode
        self.num_workers = num_workers
        self.rounds = rounds
        self.clients = clients
        self.config = config
        self.kills_by_round: Dict[int, List[Optional[int]]] = {}
        for fault in plan.faults:
            shard = None if fault.target is None else int(fault.target)
            if shard is not None and not (0 <= shard < num_workers):
                raise ValueError(f"fault targets unknown worker {shard}")
            rnd = int(fault.at_s)
            if rnd >= rounds:
                raise ValueError(
                    f"kill at round {rnd} but the drive has {rounds}")
            self.kills_by_round.setdefault(rnd, []).append(shard)
        self.report: Dict[str, object] = {
            "plan": plan.as_dict(),
            "violations": [],
            "faults_injected": 0,
            "worker_restarts": 0,
        }

    def run(self) -> Dict[str, object]:
        from repro.soc.service import (  # local: service pulls in mp setup
            IngestService,
            ServiceConfig,
            derive_session_key,
            encode_batch,
            seal_payload,
        )
        from repro.core.safety import Asil
        from repro.soc.events import EventSource, make_event
        from repro.soc.shard import ConservationError

        config = self.config or ServiceConfig(
            max_lateness_s=7200.0, snapshot_every_pumps=3,
            fleet_key=b"\x42" * 16)
        clk = [1000.0]
        svc = IngestService(self.num_workers, mode=self.mode,
                            root=self.root, config=config,
                            clock=lambda: clk[0])
        conns = [svc.open_conn(f"chaos-veh-{i}")
                 for i in range(self.clients)]
        keys = {c.client_id: derive_session_key(config.fleet_key,
                                                c.client_id)
                for c in conns} if config.fleet_key else {}
        routed = 0
        acked = 0
        try:
            for rnd in range(self.rounds):
                clk[0] += 1.0
                for conn in conns:
                    payload = encode_batch(rnd, [
                        make_event(conn.client_id, EventSource.IDS,
                                   f"chaos.sig.{i % 4}",
                                   900.0 + rnd + 0.01 * i,
                                   rnd * 100 + i, severity=Asil.C)
                        for i in range(3)])
                    if config.fleet_key:
                        payload = seal_payload(keys[conn.client_id],
                                               conn.client_id, payload)
                    if svc.route(conn, payload):
                        routed += 1
                svc.flush()
                for shard in self.kills_by_round.get(rnd, []):
                    targets = ([shard] if shard is not None
                               else list(range(self.num_workers)))
                    for t in targets:
                        svc.sigkill_worker(t)
                        self.report["faults_injected"] += 1
                    restarted = svc.check_workers()
                    self.report["worker_restarts"] += restarted
                    if restarted < len(targets):
                        self.report["violations"].append(
                            f"round {rnd}: killed {len(targets)} workers "
                            f"but only {restarted} restarted")
                    # Heal point: every resubmitted handoff must report
                    # back and the flow identity must still hold.
                    while svc.inflight_batches():
                        acked += len(svc.poll_completions(timeout=0.05))
                    try:
                        svc.audit_conservation()
                    except ConservationError as exc:
                        self.report["violations"].append(
                            f"round {rnd}: conservation audit after "
                            f"restart: {exc}")
                acked += len(svc.poll_completions(
                    timeout=0.01 if self.mode == "process" else 0.0))
            while svc.buffered() or svc.inflight_batches():
                svc.flush()
                acked += len(svc.poll_completions(timeout=0.01))
            try:
                svc.audit_conservation()
            except ConservationError as exc:
                self.report["violations"].append(
                    f"final conservation audit: {exc}")
            metrics = svc.metrics()
            if acked != routed:
                self.report["violations"].append(
                    f"ACK loss: routed {routed} batches, acked {acked}")
            if metrics["batches_acked"] != metrics["batches_routed"]:
                self.report["violations"].append(
                    f"ACK loss in metrics: routed "
                    f"{metrics['batches_routed']:.0f}, acked "
                    f"{metrics['batches_acked']:.0f}")
            self.report["batches_routed"] = routed
            self.report["batches_acked"] = acked
            self.report["service_metrics"] = metrics
        finally:
            svc.drain_and_close()
        return self.report

    def assert_clean(self) -> None:
        if self.report["violations"]:
            raise ChaosInvariantViolation(
                "; ".join(self.report["violations"]))
