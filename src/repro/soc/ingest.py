"""Bounded-queue ingestion pipeline with batching and load shedding.

The VSOC front door.  Design constraints taken from the ROADMAP
north-star ("heavy traffic from millions of users"): admission must be
O(1), memory must be bounded regardless of offered load, and overload
must degrade *explicitly* -- every shed event is counted and attributed
to a policy decision, never silently lost.

Stages (each with its own :class:`StageStats`):

``admit``     schema/timestamp sanity validation, severity floor;
``queue``     a :class:`BoundedQueue` with a pluggable :class:`ShedPolicy`;
``dispatch``  capacity-limited batch drain to the registered sinks
              (the correlation engine, archival taps, ...).

Backend capacity is modelled in *simulation time*: each ``pump(now)``
may dispatch at most ``capacity_eps * dt`` events, so a fleet offering
more than the backend sustains visibly grows the queue until the shed
policy engages -- the backpressure signal (:attr:`IngestPipeline.congested`)
that workload sources use to throttle low-severity telemetry at origin.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Deque, Dict, List, Optional

from repro.core.safety import Asil
from repro.soc.columnar import ColumnarBatch, StringInterner, build_batch
from repro.soc.events import SecurityEvent


class ShedPolicy(Enum):
    """What to drop when the queue is full."""

    DROP_NEWEST = "drop-newest"      # refuse the arriving event
    DROP_OLDEST = "drop-oldest"      # evict the head (stale-first)
    LOWEST_SEVERITY = "lowest-severity"  # evict the least-severe queued event


class TokenBucket:
    """Deterministic token bucket (admission-control rate limiter).

    ``rate`` tokens accrue per unit of time up to ``burst``; ``try_take``
    refills from the caller-supplied clock and then either debits
    ``amount`` whole (True) or leaves the bucket untouched (False) --
    a refused take never partially drains, so refusal accounting stays
    exact.  Time is injected on every call rather than read internally:
    the service front door feeds it a monotonic clock, tests feed it a
    counter, and either way behavior is a pure function of the call
    sequence.
    """

    __slots__ = ("rate", "burst", "tokens", "_t")

    def __init__(self, rate: float, burst: float, now: float = 0.0) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be > 0")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)   # starts full: a burst is allowed
        self._t = float(now)

    def _refill(self, now: float) -> None:
        if now > self._t:
            self.tokens = min(self.burst,
                              self.tokens + (now - self._t) * self.rate)
            self._t = now

    def try_take(self, amount: float, now: float) -> bool:
        """Debit ``amount`` tokens if available; all-or-nothing."""
        self._refill(now)
        if self.tokens >= amount:
            self.tokens -= amount
            return True
        return False

    def level(self, now: float) -> float:
        """Current token level after refilling to ``now``."""
        self._refill(now)
        return self.tokens


@dataclass
class StageStats:
    """Per-stage throughput/latency counters."""

    name: str
    entered: int = 0
    exited: int = 0
    shed: int = 0
    batches: int = 0
    latency_sum_s: float = 0.0
    latency_max_s: float = 0.0
    depth_max: int = 0

    @property
    def mean_latency_s(self) -> float:
        return self.latency_sum_s / self.exited if self.exited else 0.0

    def throughput_eps(self, elapsed_s: float) -> float:
        return self.exited / elapsed_s if elapsed_s > 0 else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            f"{self.name}_in": float(self.entered),
            f"{self.name}_out": float(self.exited),
            f"{self.name}_shed": float(self.shed),
        }


class BoundedQueue:
    """Severity-bucketed FIFO with hard capacity and explicit shedding.

    Events are kept in one deque per ASIL level; drain order is highest
    severity first, FIFO within a level, which makes LOWEST_SEVERITY
    eviction O(1) instead of an O(n) scan.

    Accounting is conservation-complete: every offered event ends up in
    exactly one of ``shed`` (refused at the door), ``evicted`` (accepted,
    then dropped to make room), ``drained``, or the queue itself, so

    - ``offered == accepted + shed``
    - ``len(q) == accepted - drained - evicted``

    hold after every operation -- the invariants the property tests and
    :class:`~repro.soc.shard.ConservationAudit` machine-check.
    """

    def __init__(self, capacity: int, policy: ShedPolicy = ShedPolicy.DROP_OLDEST) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.policy = policy
        self._buckets: Dict[Asil, Deque[SecurityEvent]] = {
            level: deque() for level in Asil
        }
        self._size = 0
        self.offered = 0
        self.accepted = 0
        self.shed = 0      # arrivals refused at the door (never queued)
        self.evicted = 0   # accepted events later dropped to make room
        self.drained = 0   # events removed via drain()
        self.depth_max = 0

    def __len__(self) -> int:
        return self._size

    @property
    def full(self) -> bool:
        return self._size >= self.capacity

    @property
    def lost(self) -> int:
        """Total events dropped at the queue (refusals + evictions)."""
        return self.shed + self.evicted

    def offer(self, event: SecurityEvent) -> Optional[SecurityEvent]:
        """Enqueue; returns the event shed to make room (possibly the
        offered one), or ``None`` if nothing was dropped."""
        self.offered += 1
        victim: Optional[SecurityEvent] = None
        if self.full:
            victim = self._evict_for(event)
            if victim is event:
                self.shed += 1
                return victim
        self._buckets[event.severity].append(event)
        self._size += 1
        self.accepted += 1
        if self._size > self.depth_max:
            self.depth_max = self._size
        if victim is not None:
            self.evicted += 1
        return victim

    def _evict_for(self, incoming: SecurityEvent) -> SecurityEvent:
        if self.policy is ShedPolicy.DROP_NEWEST:
            return incoming
        if self.policy is ShedPolicy.DROP_OLDEST:
            # Oldest = head of the lowest non-empty severity bucket; stale
            # low-severity telemetry goes before fresh critical alerts.
            for level in Asil:
                if self._buckets[level]:
                    self._size -= 1
                    return self._buckets[level].popleft()
        # LOWEST_SEVERITY: evict from the least-severe non-empty bucket,
        # but never to admit something even less severe.
        for level in Asil:
            bucket = self._buckets[level]
            if bucket:
                if level >= incoming.severity:
                    return incoming
                self._size -= 1
                return bucket.popleft()
        return incoming  # pragma: no cover - full implies a non-empty bucket

    def drain(self, limit: int) -> List[SecurityEvent]:
        """Dequeue up to ``limit`` events, highest severity first."""
        out: List[SecurityEvent] = []
        if limit <= 0:
            return out
        for level in reversed(Asil):
            bucket = self._buckets[level]
            while bucket and len(out) < limit:
                out.append(bucket.popleft())
                self._size -= 1
            if len(out) >= limit:
                break
        self.drained += len(out)
        return out


class IngestPipeline:
    """admit -> queue -> dispatch, with per-stage accounting.

    ``capacity_eps``: backend dispatch capacity in events per simulated
    second.  ``congestion_watermark``: queue fill fraction above which
    :attr:`congested` turns on (sources may then pre-shed QM/A telemetry).
    """

    def __init__(
        self,
        capacity_eps: float = 250.0,
        queue_capacity: int = 2048,
        batch_size: int = 64,
        shed_policy: ShedPolicy = ShedPolicy.LOWEST_SEVERITY,
        min_severity: Asil = Asil.QM,
        congestion_watermark: float = 0.5,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.capacity_eps = capacity_eps
        self.batch_size = batch_size
        self.min_severity = min_severity
        self.queue = BoundedQueue(queue_capacity, shed_policy)
        self._congestion_depth = max(1, int(queue_capacity * congestion_watermark))
        self._sinks: List[Callable[[float, SecurityEvent], None]] = []
        self._batch_sinks: List[Callable[[float, List[SecurityEvent]], None]] = []
        self._columnar_sinks: List[Callable[[float, ColumnarBatch], None]] = []
        self._interner: Optional[StringInterner] = None
        # Enqueue timestamps keyed by *queue occupancy*, not by identity:
        # an at-least-once transport can redeliver an event while its
        # first copy is still queued, and a plain ``Dict[str, float]``
        # would overwrite the first copy's timestamp (skewing the wait of
        # one dispatch and zeroing the other).  Copies of one event_id
        # share a severity bucket and leave in FIFO order -- for every
        # exit path (dispatch *and* eviction both take the bucket head)
        # -- so a FIFO of timestamps per id keeps each copy's wait exact.
        self._enqueue_time: Dict[str, Deque[float]] = {}
        self._last_pump: Optional[float] = None
        self._carry = 0.0  # fractional dispatch budget between pumps
        self.stats = {
            "admit": StageStats("admit"),
            "queue": StageStats("queue"),
            "dispatch": StageStats("dispatch"),
        }
        self.rejected_invalid = 0
        self.rejected_severity = 0

    # ------------------------------------------------------------------
    # Front door
    # ------------------------------------------------------------------
    def add_sink(self, sink: Callable[[float, SecurityEvent], None]) -> None:
        self._sinks.append(sink)

    def add_batch_sink(
        self, sink: Callable[[float, List[SecurityEvent]], None]
    ) -> None:
        """Register a consumer that takes each drained batch as one list.

        Batch sinks see exactly the events the per-event sinks see, in
        exactly the same order (severity-major drain order, one call per
        drained batch instead of one per event) -- the differential tests
        pin both.  Dispatch accounting is identical either way.
        """
        self._batch_sinks.append(sink)

    def add_columnar_sink(
        self, sink: Callable[[float, ColumnarBatch], None]
    ) -> None:
        """Register a consumer of :class:`~repro.soc.columnar.ColumnarBatch`.

        The columnar form is built **once per drained batch**, at
        dispatch time -- where the pipeline already touches every event
        for latency accounting -- and shared by all columnar sinks.  It
        wraps exactly the events (and order) the per-event and batch
        sinks see; archival taps that serialize ``batch.events`` are
        byte-identical to the pre-columnar record codec by construction.
        The signature interner persists across batches per pipeline (its
        ids are only ever batch-local grouping labels downstream).
        """
        self._columnar_sinks.append(sink)

    @property
    def queue_depth(self) -> int:
        """Events currently queued (uniform across plain/sharded)."""
        return len(self.queue)

    @property
    def congested(self) -> bool:
        return len(self.queue) >= self._congestion_depth

    @property
    def fully_congested(self) -> bool:
        """Uniform API with :class:`~repro.soc.shard.ShardedIngestPipeline`:
        a single queue is fully congested iff it is congested."""
        return self.congested

    def congested_for(self, event: SecurityEvent) -> bool:
        """Backpressure signal for *this* event's ingestion path.

        A plain pipeline has one path; the sharded pipeline overrides
        this per shard so sources only throttle telemetry headed for a
        hot partition.
        """
        return self.congested

    @property
    def shed_rate(self) -> float:
        """Fraction of *offered* events shed at the queue (refusals plus
        evictions of previously accepted events)."""
        offered = self.queue.offered
        return self.queue.lost / offered if offered else 0.0

    def offer(self, now: float, event: SecurityEvent) -> bool:
        """Admit one event; returns True if it made it into the queue."""
        admit = self.stats["admit"]
        admit.entered += 1
        if not event.vehicle_id or event.time < 0 or event.time > now + 1e-9:
            self.rejected_invalid += 1
            return False
        if event.severity < self.min_severity:
            self.rejected_severity += 1
            return False
        admit.exited += 1

        qstats = self.stats["queue"]
        qstats.entered += 1
        victim = self.queue.offer(event)
        if victim is not None:
            qstats.shed += 1
        if victim is event:
            # Refused at the door: it never had an enqueue timestamp (a
            # queued copy of the same id keeps its own).
            return False
        if victim is not None:
            self._drop_enqueue_time(victim)
        self._enqueue_time.setdefault(event.event_id, deque()).append(now)
        if len(self.queue) > qstats.depth_max:
            qstats.depth_max = len(self.queue)
        return True

    def _drop_enqueue_time(self, victim: SecurityEvent) -> None:
        """Forget the oldest queued copy's timestamp when it is evicted
        (evictions pop the bucket head, i.e. the oldest copy of an id)."""
        times = self._enqueue_time.get(victim.event_id)
        if times:
            times.popleft()
            if not times:
                del self._enqueue_time[victim.event_id]

    # ------------------------------------------------------------------
    # Backend
    # ------------------------------------------------------------------
    def pump(self, now: float) -> int:
        """Dispatch queued events within the capacity budget since the
        last pump; returns the number dispatched.

        .. note:: **First-pump budget quirk (intended, pinned by test).**
           The very first ``pump`` has no reference point for elapsed
           simulation time, so it always grants exactly ``batch_size``
           regardless of ``now`` -- a cold backend drains one batch, not
           ``capacity_eps * now`` events.  The sharded drain loop
           (:class:`~repro.soc.shard.ShardedIngestPipeline`) replicates
           this as ``batch_size * num_shards`` (one cold batch per
           worker) so ``num_shards=1`` stays bit-identical to a plain
           pipeline.
        """
        if self._last_pump is None:
            budget = float(self.batch_size)
        else:
            budget = self._carry + self.capacity_eps * max(0.0, now - self._last_pump)
        self._last_pump = now
        allowance = int(budget)
        self._carry = min(budget - allowance, self.capacity_eps)
        return self.dispatch(now, allowance)

    def dispatch(self, now: float, allowance: int) -> int:
        """Drain and deliver up to ``allowance`` events, one batch at a
        time, bypassing the rate budget (the caller owns it -- either
        :meth:`pump` or a sharded worker pool)."""
        dispatch = self.stats["dispatch"]
        dispatched = 0
        while dispatched < allowance:
            batch = self.queue.drain(min(self.batch_size, allowance - dispatched))
            if not batch:
                break
            dispatch.batches += 1
            for event in batch:
                dispatch.entered += 1
                times = self._enqueue_time.get(event.event_id)
                if times:
                    t_in = times.popleft()
                    if not times:
                        del self._enqueue_time[event.event_id]
                else:  # pragma: no cover - defensive; every queued copy logs a time
                    t_in = now
                wait = max(0.0, now - t_in)
                dispatch.latency_sum_s += wait
                if wait > dispatch.latency_max_s:
                    dispatch.latency_max_s = wait
                for sink in self._sinks:
                    sink(now, event)
                dispatch.exited += 1
                dispatched += 1
            for batch_sink in self._batch_sinks:
                batch_sink(now, batch)
            if self._columnar_sinks:
                if self._interner is None:
                    self._interner = StringInterner()
                cb = build_batch(batch, self._interner)
                for columnar_sink in self._columnar_sinks:
                    columnar_sink(now, cb)
        self.stats["queue"].exited += dispatched
        return dispatched

    def drain_all(self, now: float) -> int:
        """Dispatch everything still queued, bypassing the rate budget.

        End-of-run drain: the simulation is over, so capacity modeling no
        longer applies -- what matters is that every accepted event is
        scored and accounted, not when.  Bounded by the queue depth.
        """
        return self.dispatch(now, len(self.queue))

    # ------------------------------------------------------------------
    def metrics(self) -> Dict[str, float]:
        dispatch = self.stats["dispatch"]
        return {
            "offered": float(self.stats["admit"].entered),
            "rejected_invalid": float(self.rejected_invalid),
            "rejected_severity": float(self.rejected_severity),
            "admitted": float(self.queue.offered),
            "queued_shed": float(self.queue.lost),
            "queue_refused": float(self.queue.shed),
            "queue_evicted": float(self.queue.evicted),
            "shed_rate": self.shed_rate,
            "dispatched": float(dispatch.exited),
            "batches": float(dispatch.batches),
            "queue_depth": float(len(self.queue)),
            "queue_depth_max": float(self.queue.depth_max),
            "mean_dispatch_latency_s": dispatch.mean_latency_s,
            "max_dispatch_latency_s": dispatch.latency_max_s,
        }
