"""The "Secure Gateway" layer.

The paper: the gateway "acts as a firewall between the external interfaces
and the safety-critical in-vehicular networks", "monitors and controls the
traffic coming into the trusted IVNs", "routing traffic from one IVN to
another", and "in case one IVN is compromised, the gateway can isolate the
compromised components".

- :mod:`repro.gateway.firewall` -- ordered rule engine (id ranges, domains,
  rate limits) with default-deny or default-allow posture.
- :mod:`repro.gateway.router` -- the central gateway joining CAN domains,
  with per-domain quarantine.
"""

from repro.gateway.firewall import Firewall, FirewallAction, FirewallRule, RateLimiter
from repro.gateway.router import GatewayStats, SecureGateway

__all__ = [
    "Firewall",
    "FirewallAction",
    "FirewallRule",
    "RateLimiter",
    "GatewayStats",
    "SecureGateway",
]
