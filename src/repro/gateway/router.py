"""The central secure gateway joining CAN domains.

The gateway taps every attached domain bus, consults a routing table
(which CAN ids propagate to which domains), runs each candidate crossing
through the firewall, and re-injects allowed frames on the destination
domain via its own gateway node after a processing delay.  A quarantined
domain's traffic is dropped at the tap -- the paper's "isolate the
compromised components and prevent the attack from propagating".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.gateway.firewall import Firewall, FirewallAction
from repro.ivn.canbus import CanBus, CanNode
from repro.ivn.frame import CanFrame
from repro.sim import Simulator, TraceRecorder


@dataclass
class GatewayStats:
    forwarded: int = 0
    dropped_firewall: int = 0
    dropped_quarantine: int = 0
    dropped_no_route: int = 0

    @property
    def total_dropped(self) -> int:
        return self.dropped_firewall + self.dropped_quarantine + self.dropped_no_route


class SecureGateway:
    """Firewall + router + quarantine over multiple CAN domains."""

    def __init__(
        self,
        sim: Simulator,
        firewall: Optional[Firewall] = None,
        name: str = "gateway",
        processing_delay: float = 200e-6,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.firewall = firewall if firewall is not None else Firewall()
        self.processing_delay = processing_delay
        self.trace = trace if trace is not None else TraceRecorder()
        self.domains: Dict[str, CanBus] = {}
        self._nodes: Dict[str, CanNode] = {}
        # routing table: (src_domain, can_id) -> set of destination domains
        self._routes: Dict[Tuple[str, int], Set[str]] = {}
        self.quarantined: Set[str] = set()
        self.stats = GatewayStats()

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def attach_domain(self, domain: str, bus: CanBus) -> None:
        """Join a domain bus: tap it and place a gateway node on it."""
        if domain in self.domains:
            raise ValueError(f"domain {domain!r} already attached")
        self.domains[domain] = bus
        self._nodes[domain] = bus.attach(f"{self.name}.{domain}")
        bus.tap(lambda frame, d=domain: self._ingress(frame, d))

    def add_route(self, src_domain: str, can_id: int, dst_domains: Set[str]) -> None:
        """Declare that ``can_id`` from ``src_domain`` is needed in
        ``dst_domains`` (the signal routing matrix from the OEM)."""
        for d in (src_domain, *dst_domains):
            if d not in self.domains:
                raise ValueError(f"unknown domain {d!r}")
        self._routes.setdefault((src_domain, can_id), set()).update(dst_domains)

    # ------------------------------------------------------------------
    # Quarantine
    # ------------------------------------------------------------------
    def quarantine(self, domain: str) -> None:
        """Stop forwarding any traffic originating in ``domain``."""
        if domain not in self.domains:
            raise ValueError(f"unknown domain {domain!r}")
        self.quarantined.add(domain)
        self.trace.emit(self.sim.now, self.name, "gateway.quarantine", domain=domain)

    def release(self, domain: str) -> None:
        self.quarantined.discard(domain)
        self.trace.emit(self.sim.now, self.name, "gateway.release", domain=domain)

    # ------------------------------------------------------------------
    # Forwarding pipeline
    # ------------------------------------------------------------------
    def _ingress(self, frame: CanFrame, src_domain: str) -> None:
        # Ignore our own re-injections to avoid routing loops.
        if frame.sender is not None and frame.sender.startswith(f"{self.name}."):
            return
        if src_domain in self.quarantined:
            self.stats.dropped_quarantine += 1
            self.trace.emit(
                self.sim.now, self.name, "gateway.drop",
                reason="quarantine", domain=src_domain, can_id=frame.can_id,
            )
            return
        destinations = self._routes.get((src_domain, frame.can_id))
        if not destinations:
            self.stats.dropped_no_route += 1
            return
        for dst_domain in destinations:
            if dst_domain == src_domain:
                continue
            action = self.firewall.evaluate(frame, src_domain, dst_domain, self.sim.now)
            if action is FirewallAction.DENY:
                self.stats.dropped_firewall += 1
                self.trace.emit(
                    self.sim.now, self.name, "gateway.drop",
                    reason="firewall", src=src_domain, dst=dst_domain,
                    can_id=frame.can_id,
                )
                continue
            self.sim.schedule(
                self.processing_delay, self._egress, frame, src_domain, dst_domain,
            )

    def _egress(self, frame: CanFrame, src_domain: str, dst_domain: str) -> None:
        if src_domain in self.quarantined:
            self.stats.dropped_quarantine += 1
            return
        node = self._nodes[dst_domain]
        node.send(frame.with_data(frame.data))
        self.stats.forwarded += 1
        self.trace.emit(
            self.sim.now, self.name, "gateway.forward",
            src=src_domain, dst=dst_domain, can_id=frame.can_id,
        )
