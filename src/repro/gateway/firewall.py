"""Ordered-rule firewall for inter-domain CAN routing.

Rules match on (source domain, destination domain, CAN id range) and carry
an action plus an optional token-bucket rate limit.  First match wins;
unmatched traffic falls to the default action.  Rule granularity is an
ablation knob in experiment E1: an id-allowlist blocks injected diagnostic
frames that a domain-level rule would pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Tuple

from repro.ivn.frame import CanFrame


class FirewallAction(Enum):
    ALLOW = "allow"
    DENY = "deny"


class RateLimiter:
    """Token bucket: ``rate`` frames/s sustained, ``burst`` frames burst."""

    def __init__(self, rate: float, burst: int) -> None:
        if rate <= 0 or burst < 1:
            raise ValueError("rate must be > 0 and burst >= 1")
        self.rate = rate
        self.burst = burst
        self.tokens = float(burst)
        self._last = 0.0

    def admit(self, now: float) -> bool:
        """Consume a token if available; refill by elapsed time."""
        elapsed = max(0.0, now - self._last)
        self._last = now
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


@dataclass
class FirewallRule:
    """One match-action entry.

    ``src``/``dst`` are domain names or ``"*"``; ``id_range`` is an
    inclusive (lo, hi) tuple over CAN ids or ``None`` for any id.
    """

    src: str
    dst: str
    action: FirewallAction
    id_range: Optional[Tuple[int, int]] = None
    rate_limit: Optional[RateLimiter] = None
    description: str = ""
    hits: int = field(default=0, init=False)

    def matches(self, frame: CanFrame, src: str, dst: str) -> bool:
        if self.src != "*" and self.src != src:
            return False
        if self.dst != "*" and self.dst != dst:
            return False
        if self.id_range is not None:
            lo, hi = self.id_range
            if not lo <= frame.can_id <= hi:
                return False
        return True


class Firewall:
    """First-match-wins rule list with a default posture.

    >>> fw = Firewall(default=FirewallAction.DENY)
    >>> fw.add_rule(FirewallRule("infotainment", "powertrain",
    ...             FirewallAction.ALLOW, id_range=(0x700, 0x7FF)))
    >>> fw.evaluate(CanFrame(0x720), "infotainment", "powertrain", 0.0)
    <FirewallAction.ALLOW: 'allow'>
    >>> fw.evaluate(CanFrame(0x0C9), "infotainment", "powertrain", 0.0)
    <FirewallAction.DENY: 'deny'>
    """

    def __init__(self, default: FirewallAction = FirewallAction.DENY) -> None:
        self.default = default
        self.rules: List[FirewallRule] = []
        self.evaluations = 0
        self.rate_limited = 0

    def add_rule(self, rule: FirewallRule) -> "Firewall":
        self.rules.append(rule)
        return self

    def evaluate(self, frame: CanFrame, src: str, dst: str, now: float) -> FirewallAction:
        """Return the action for a frame crossing ``src`` -> ``dst``."""
        self.evaluations += 1
        for rule in self.rules:
            if rule.matches(frame, src, dst):
                rule.hits += 1
                if rule.action is FirewallAction.ALLOW and rule.rate_limit is not None:
                    if not rule.rate_limit.admit(now):
                        self.rate_limited += 1
                        return FirewallAction.DENY
                return rule.action
        return self.default
