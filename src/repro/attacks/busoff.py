"""The bus-off attack: weaponising CAN's fault confinement.

An attacker who can cause bit errors exactly when the victim transmits
(in practice: by transmitting a dominant bit over the victim's recessive
one at a chosen offset) drives the victim's transmit error counter up by
8 per frame.  After 32 consecutive induced errors the victim exceeds
TEC 255 and enters **bus-off** -- silenced by its own controller.  The
paper's availability model; also the enabler for clean masquerade
(:mod:`repro.attacks.masquerade`), since the legitimate sender is gone.
"""

from __future__ import annotations

from typing import Optional

from repro.ivn.canbus import CanBus, CanNode
from repro.ivn.frame import CanFrame
from repro.sim import Simulator


class BusOffAttack:
    """Forces a victim node into bus-off via targeted frame corruption."""

    def __init__(self, sim: Simulator, bus: CanBus, victim: str) -> None:
        if victim not in bus.nodes:
            raise ValueError(f"victim {victim!r} not on bus")
        self.sim = sim
        self.bus = bus
        self.victim = victim
        self.active = False
        self.errors_induced = 0
        self.started_at: Optional[float] = None
        self._previous_hook = None

    def start(self) -> None:
        if self.active:
            return
        self.active = True
        self.started_at = self.sim.now
        self._previous_hook = self.bus.corruption_hook
        self.bus.corruption_hook = self._corrupt

    def stop(self) -> None:
        self.active = False
        self.bus.corruption_hook = self._previous_hook

    def _corrupt(self, frame: CanFrame) -> bool:
        if not self.active:
            return False
        if frame.sender == self.victim:
            self.errors_induced += 1
            return True
        if self._previous_hook is not None:
            return self._previous_hook(frame)
        return False

    @property
    def succeeded(self) -> bool:
        return self.bus.nodes[self.victim].bus_off

    def frames_to_bus_off(self) -> int:
        """Theoretical minimum induced errors (TEC +8 each, from 0)."""
        return (255 // 8) + 1
