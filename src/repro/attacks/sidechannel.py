"""Correlation power analysis (CPA) against AES first-round leakage.

The paper's side-channel scenario (§4.2): an adversary with physical
access to one vehicle extracts cryptographic keys from emission profiles,
then uses them against the whole class.  This module implements the
standard CPA attack of the DPA literature:

1. Acquire N (plaintext, trace) pairs from :class:`PowerTraceModel`.
2. For each key byte position and each of the 256 guesses, predict the
   Hamming weight of ``SBOX[pt ^ guess]`` for every trace.
3. The guess whose predictions correlate best (Pearson) with the measured
   samples is the recovered key byte.

Against plain :class:`~repro.crypto.aes.AES`, recovery succeeds with tens
to hundreds of traces depending on noise.  Against
:class:`~repro.crypto.aes.MaskedAES` the intermediate is randomised and
first-order CPA fails regardless of trace count -- experiment E4's result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.crypto.aes import SBOX
from repro.physical.emissions import PowerTraceModel

_HW_TABLE = np.array([bin(x).count("1") for x in range(256)], dtype=np.float64)
_SBOX_ARR = np.array(SBOX, dtype=np.int64)


@dataclass
class CpaResult:
    """Outcome of a CPA run."""

    recovered_key: bytes
    correlations: np.ndarray  # shape (16, 256): best |rho| per byte/guess
    traces_used: int

    def bytes_correct(self, true_key: bytes) -> int:
        return sum(1 for a, b in zip(self.recovered_key, true_key) if a == b)

    def success(self, true_key: bytes) -> bool:
        return self.recovered_key == true_key[: len(self.recovered_key)]


class CpaAttack:
    """First-order CPA over a set of acquired traces."""

    def __init__(self, model: PowerTraceModel) -> None:
        self.model = model

    def run(self, n_traces: int) -> CpaResult:
        """Acquire ``n_traces`` and recover the 16 key bytes."""
        plaintexts, traces = self.model.collect(n_traces)
        return self.analyze(plaintexts, traces)

    @staticmethod
    def analyze(plaintexts: Sequence[bytes], traces: Sequence[Sequence[float]]) -> CpaResult:
        """CPA over pre-acquired data (separable for trace-count sweeps)."""
        n = len(plaintexts)
        if n < 4:
            raise ValueError("need at least 4 traces")
        pts = np.array([list(p) for p in plaintexts], dtype=np.int64)  # (N,16)
        T = np.array(traces, dtype=np.float64)                          # (N,16)
        t_centered = T - T.mean(axis=0)
        t_norm = np.sqrt((t_centered ** 2).sum(axis=0))                 # (16,)

        key = bytearray(16)
        corr_matrix = np.zeros((16, 256))
        guesses = np.arange(256, dtype=np.int64)
        for byte_idx in range(16):
            # Hypothesis matrix: HW(SBOX[pt ^ guess]) for all (trace, guess).
            xored = pts[:, byte_idx][:, None] ^ guesses[None, :]        # (N,256)
            hyp = _HW_TABLE[_SBOX_ARR[xored]]                           # (N,256)
            h_centered = hyp - hyp.mean(axis=0)
            h_norm = np.sqrt((h_centered ** 2).sum(axis=0))             # (256,)
            numerator = h_centered.T @ t_centered[:, byte_idx]          # (256,)
            denom = h_norm * t_norm[byte_idx]
            with np.errstate(divide="ignore", invalid="ignore"):
                rho = np.where(denom > 0, numerator / denom, 0.0)
            corr_matrix[byte_idx] = np.abs(rho)
            key[byte_idx] = int(np.argmax(np.abs(rho)))
        return CpaResult(bytes(key), corr_matrix, n)

    def traces_to_success(
        self,
        true_key: bytes,
        max_traces: int = 2000,
        step: int = 50,
        start: int = 50,
    ) -> Optional[int]:
        """Smallest trace count (on the sweep grid) that recovers the key.

        Returns ``None`` if the key is not recovered within ``max_traces``
        (the expected outcome against a masked implementation).
        """
        plaintexts, traces = self.model.collect(max_traces)
        for n in range(start, max_traces + 1, step):
            result = self.analyze(plaintexts[:n], traces[:n])
            if result.success(true_key):
                return n
        return None
