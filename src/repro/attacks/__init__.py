"""Attack library.

One module per attack mode the paper enumerates (§4.1 attack models,
§4.2 attack modes, §4.3 access security):

- :mod:`repro.attacks.injection` -- CAN frame injection / targeted spoofing
  (integrity).
- :mod:`repro.attacks.dos` -- low-id arbitration flood (availability).
- :mod:`repro.attacks.busoff` -- error-injection bus-off attack that
  silences a victim node (availability).
- :mod:`repro.attacks.replay` -- record-and-replay of legitimate frames.
- :mod:`repro.attacks.fuzz` -- random-id/payload fuzzing.
- :mod:`repro.attacks.masquerade` -- silence the victim, then speak as it.
- :mod:`repro.attacks.sidechannel` -- correlation power analysis (CPA)
  against AES first-round leakage (confidentiality).
- :mod:`repro.attacks.sensors` -- GPS / TPMS / LIDAR / acoustic-MEMS
  spoofing scenarios (availability, integrity).
- :mod:`repro.attacks.glitch` -- voltage/clock fault injection vs the
  tamper detector.

Each attack object records its own ground-truth activity window and event
labels so IDS experiments can score detections without oracle leakage into
the detectors themselves.
"""

from repro.attacks.injection import InjectionAttack, SpoofAttack
from repro.attacks.dos import BusFloodAttack
from repro.attacks.busoff import BusOffAttack
from repro.attacks.replay import ReplayAttack
from repro.attacks.fuzz import FuzzAttack
from repro.attacks.masquerade import MasqueradeAttack
from repro.attacks.sidechannel import CpaAttack, CpaResult
from repro.attacks.sensors import (
    AcousticMemsAttack,
    GpsSpoofingAttack,
    LidarPhantomAttack,
    TpmsSpoofingAttack,
)
from repro.attacks.glitch import VoltageGlitchAttack

__all__ = [
    "InjectionAttack",
    "SpoofAttack",
    "BusFloodAttack",
    "BusOffAttack",
    "ReplayAttack",
    "FuzzAttack",
    "MasqueradeAttack",
    "CpaAttack",
    "CpaResult",
    "AcousticMemsAttack",
    "GpsSpoofingAttack",
    "LidarPhantomAttack",
    "TpmsSpoofingAttack",
    "VoltageGlitchAttack",
]
