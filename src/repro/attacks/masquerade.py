"""Masquerade attack: silence the victim, then speak as it.

The strongest CAN attack class: a bus-off attack removes the legitimate
sender, after which the attacker transmits the victim's ids *at the
victim's original rate* with attacker-chosen payloads.  Frequency-based
IDS sees nominal timing; specification-based IDS sees in-spec payloads (if
the attacker is careful).  Only cryptographic authentication (E3) or
sender fingerprinting defeats it -- which is the paper's argument for the
secure-processing layer underpinning network security.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.attacks.busoff import BusOffAttack
from repro.ivn.canbus import CanBus, CanNode
from repro.ivn.frame import CanFrame
from repro.sim import Simulator


class MasqueradeAttack:
    """Bus-off the victim, then impersonate its periodic frame."""

    def __init__(
        self,
        sim: Simulator,
        bus: CanBus,
        victim: str,
        target_id: int,
        period: float,
        payload_fn: Callable[[int], bytes],
        node_name: str = "masquerader",
    ) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        self.sim = sim
        self.bus = bus
        self.victim = victim
        self.target_id = target_id
        self.period = period
        self.payload_fn = payload_fn
        self.node: CanNode = bus.nodes.get(node_name) or bus.attach(node_name)
        self.busoff = BusOffAttack(sim, bus, victim)
        self.impersonating = False
        self.sent = 0
        self.started_at: Optional[float] = None

    def start(self) -> None:
        """Phase 1: drive the victim to bus-off; phase 2 starts on success."""
        self.started_at = self.sim.now
        self.busoff.start()
        self._poll_victim()

    def _poll_victim(self) -> None:
        if self.busoff.succeeded:
            self.busoff.stop()
            self.impersonating = True
            self.sim.schedule(0.0, self._impersonate)
            return
        self.sim.schedule(self.period / 4, self._poll_victim)

    def _impersonate(self) -> None:
        if not self.impersonating:
            return
        self.node.send(CanFrame(self.target_id, self.payload_fn(self.sent)))
        self.sent += 1
        self.sim.schedule(self.period, self._impersonate)

    def stop(self) -> None:
        self.impersonating = False
        self.busoff.stop()

    def was_active_at(self, time: float) -> bool:
        return self.started_at is not None and time >= self.started_at
