"""Record-and-replay attack.

The attacker passively records legitimate frames for a window, then
re-transmits them verbatim later.  Payloads are perfectly plausible (they
*were* legitimate), so specification-based detection passes them; only
timing/frequency analysis or cryptographic freshness (nonces/counters in
authenticated CAN, E3) catches replay.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.ivn.canbus import CanBus, CanNode
from repro.ivn.frame import CanFrame
from repro.sim import Simulator


class ReplayAttack:
    """Records frames matching a filter, replays them after a delay."""

    def __init__(
        self,
        sim: Simulator,
        bus: CanBus,
        target_ids: Optional[set] = None,
        node_name: str = "replayer",
    ) -> None:
        self.sim = sim
        self.bus = bus
        self.target_ids = target_ids
        self.node: CanNode = bus.nodes.get(node_name) or bus.attach(node_name)
        self.recording = False
        self.recorded: List[Tuple[float, CanFrame]] = []
        self.replayed = 0
        self.replay_started_at: Optional[float] = None
        bus.tap(self._observe)

    def _observe(self, frame: CanFrame) -> None:
        if not self.recording:
            return
        if frame.sender == self.node.name:
            return  # don't record our own replays
        if self.target_ids is None or frame.can_id in self.target_ids:
            self.recorded.append((self.sim.now, frame))

    def start_recording(self) -> None:
        self.recording = True

    def stop_recording(self) -> None:
        self.recording = False

    def replay(self, speedup: float = 1.0) -> int:
        """Schedule the recorded frames, preserving relative timing
        (compressed by ``speedup``).  Returns the number scheduled."""
        if not self.recorded:
            return 0
        if speedup <= 0:
            raise ValueError("speedup must be positive")
        self.replay_started_at = self.sim.now
        base = self.recorded[0][0]
        for original_time, frame in self.recorded:
            offset = (original_time - base) / speedup
            self.sim.schedule(offset, self._send, frame)
        return len(self.recorded)

    def _send(self, frame: CanFrame) -> None:
        self.node.send(CanFrame(frame.can_id, frame.data, extended=frame.extended))
        self.replayed += 1
