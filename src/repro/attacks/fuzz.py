"""Random fuzzing attack.

Sprays random ids and payloads -- the unsophisticated but common attack
from hobbyist OBD dongles, and the probe that hits "reserved for future
use" configurations (experiment E14): fuzzing is how unused id space gets
exercised in the field.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.attacks.injection import InjectionAttack
from repro.ivn.canbus import CanBus
from repro.ivn.frame import CanFrame
from repro.sim import Simulator


class FuzzAttack(InjectionAttack):
    """Random-id, random-payload injection."""

    def __init__(
        self,
        sim: Simulator,
        bus: CanBus,
        rate_hz: float,
        rng: Optional[random.Random] = None,
        id_range: tuple = (0x000, 0x7FF),
        node_name: str = "fuzzer",
    ) -> None:
        self.rng = rng if rng is not None else random.Random()
        lo, hi = id_range
        if not 0 <= lo <= hi <= 0x7FF:
            raise ValueError("invalid id range")

        def factory(seq: int) -> CanFrame:
            can_id = self.rng.randint(lo, hi)
            dlc = self.rng.randint(0, 8)
            return CanFrame(can_id, self.rng.randbytes(dlc))

        super().__init__(sim, bus, factory, rate_hz, node_name=node_name)
        self.id_range = id_range
