"""Voltage fault-injection (glitch) attack vs the tamper detector.

A glitch attack briefly pulls the supply rail outside spec hoping to skip
an instruction (e.g. the secure-boot comparison).  Success requires the
glitch to (a) evade the tamper detector's sampling and (b) land on the
vulnerable cycle.  Both are probabilistic, so attackers repeat; defenders
respond to the *first* detection by locking the part.  The model sweeps
repetition count vs detection probability.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.ecu.tamper import TamperDetector


@dataclass
class GlitchCampaignResult:
    attempts: int
    faults_landed: int
    detected_at_attempt: Optional[int]

    @property
    def succeeded_before_detection(self) -> bool:
        if self.faults_landed == 0:
            return False
        return self.detected_at_attempt is None or self.faults_landed > 0


class VoltageGlitchAttack:
    """Repeated glitch attempts against a tamper-protected MCU."""

    def __init__(
        self,
        detector: TamperDetector,
        glitch_voltage: float = 1.2,
        fault_probability: float = 0.02,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.detector = detector
        self.glitch_voltage = glitch_voltage
        self.fault_probability = fault_probability
        self.rng = rng if rng is not None else random.Random()

    def campaign(self, max_attempts: int, stop_on_detection: bool = True) -> GlitchCampaignResult:
        """Run up to ``max_attempts`` glitches.

        Each attempt: the tamper detector samples the glitched rail (it may
        miss); if it fires, the SHE locks and -- with ``stop_on_detection``
        -- the campaign is over.  Otherwise the glitch lands a useful fault
        with ``fault_probability``.
        """
        faults = 0
        detected_at = None
        attempts = 0
        for attempt in range(1, max_attempts + 1):
            attempts = attempt
            if self.detector.sample("voltage", self.glitch_voltage):
                detected_at = attempt
                if stop_on_detection:
                    break
                continue
            if self.rng.random() < self.fault_probability:
                faults += 1
                break  # one landed fault is enough (e.g. boot check skipped)
        return GlitchCampaignResult(attempts, faults, detected_at)
