"""Arbitration-flood denial of service.

CAN arbitration always yields to the lowest id, so a node spamming id 0
with back-to-back frames owns the wire: every legitimate frame waits
behind the flood.  This is the canonical CAN availability attack (§4.1).
The attack's effectiveness is measured as victim deadline-miss rate and
bus utilisation in E1/E3.
"""

from __future__ import annotations

from repro.attacks.injection import InjectionAttack
from repro.ivn.canbus import CanBus
from repro.ivn.frame import CanFrame
from repro.sim import Simulator


class BusFloodAttack(InjectionAttack):
    """Saturates the bus with highest-priority (lowest-id) frames.

    ``headroom`` scales the injection rate relative to the theoretical
    maximum frame rate; >= 1.0 keeps the transmit queue permanently
    non-empty (full starvation of all other traffic).
    """

    def __init__(
        self,
        sim: Simulator,
        bus: CanBus,
        flood_id: int = 0x000,
        dlc: int = 8,
        headroom: float = 1.2,
        node_name: str = "flooder",
    ) -> None:
        if headroom <= 0:
            raise ValueError("headroom must be positive")
        probe = CanFrame(flood_id, bytes(dlc))
        max_rate = bus.bitrate / probe.bit_length()
        super().__init__(
            sim, bus,
            frame_factory=lambda seq: CanFrame(
                flood_id, (seq % 256).to_bytes(1, "big") * dlc if dlc else b"",
            ),
            rate_hz=max_rate * headroom,
            node_name=node_name,
        )
        self.flood_id = flood_id
