"""Sensor-channel spoofing scenarios (§4.1 availability/integrity attacks).

Each class binds an attacker strategy to one sensor's spoofing surface and
records ground truth for the E12 evaluation: did the fusion layer act on
the forged data (deception success) or flag it (detection)?
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

from repro.physical.sensors import (
    Accelerometer,
    GpsSensor,
    LidarSensor,
    TpmsSensor,
)
from repro.physical.vehicle import Vehicle


class GpsSpoofingAttack:
    """Counterfeit GPS constellation.

    Two strategies: ``jump`` (teleport the reported fix -- easy to detect)
    and ``drift`` (walk the fix away slowly, staying under the innovation
    gate -- the dangerous one the GPS-spoofing literature demonstrates).
    """

    def __init__(self, gps: GpsSensor, vehicle: Vehicle) -> None:
        self.gps = gps
        self.vehicle = vehicle
        self.active = False
        self._offset = (0.0, 0.0)
        self.strategy: Optional[str] = None

    def start_jump(self, target: Tuple[float, float]) -> None:
        """Immediately report an arbitrary position."""
        self.active = True
        self.strategy = "jump"
        self.gps.spoof(target)

    def start_drift(self, rate_m_s: float, bearing: float) -> None:
        """Begin a slow walk-off; call :meth:`step_drift` each dt."""
        self.active = True
        self.strategy = "drift"
        self._drift_rate = rate_m_s
        self._drift_bearing = bearing
        self._offset = (0.0, 0.0)

    def step_drift(self, dt: float) -> None:
        if not self.active or self.strategy != "drift":
            return
        self._offset = (
            self._offset[0] + self._drift_rate * math.cos(self._drift_bearing) * dt,
            self._offset[1] + self._drift_rate * math.sin(self._drift_bearing) * dt,
        )
        true = self.vehicle.state.position
        self.gps.spoof((true[0] + self._offset[0], true[1] + self._offset[1]))

    def induced_error(self) -> float:
        """Current distance between reported and true position."""
        return math.hypot(*self._offset) if self.strategy == "drift" else float("inf")

    def stop(self) -> None:
        self.active = False
        self.gps.spoof(None)


class TpmsSpoofingAttack:
    """Forged TPMS packets: report a blowout (or mask a real one)."""

    def __init__(self, tpms: TpmsSensor) -> None:
        self.tpms = tpms
        self.active = False
        self.targets: list = []

    def fake_blowout(self, sensor_id: int, pressure_kpa: float = 0.0) -> None:
        self.tpms.spoof(sensor_id, pressure_kpa)
        self.targets.append(sensor_id)
        self.active = True

    def mask_real_pressure(self, sensor_id: int) -> None:
        """Report nominal while the real tire deflates."""
        self.tpms.spoof(sensor_id, TpmsSensor.NOMINAL_KPA)
        self.targets.append(sensor_id)
        self.active = True

    def stop(self) -> None:
        for sid in self.targets:
            self.tpms.spoof(sid, None)
        self.targets.clear()
        self.active = False


class LidarPhantomAttack:
    """Laser-replay phantom obstacles.

    ``naive`` phantoms sit at a fixed sensor-relative position (replay
    hardware has no ego-motion compensation), which the fusion world-frame
    persistence gate rejects once the vehicle moves.
    """

    def __init__(self, lidar: LidarSensor) -> None:
        self.lidar = lidar
        self.active = False
        self.phantoms = 0

    def inject(self, range_m: float, bearing: float, count: int = 1) -> None:
        for i in range(count):
            self.lidar.spoof_phantom(range_m + 0.5 * i, bearing)
        self.phantoms += count
        self.active = True

    def stop(self) -> None:
        self.lidar.clear_phantoms()
        self.active = False


class AcousticMemsAttack:
    """Resonant acoustic injection into a MEMS accelerometer."""

    def __init__(self, accelerometer: Accelerometer) -> None:
        self.accel = accelerometer
        self.active = False

    def start(self, amplitude: float, freq_hz: Optional[float] = None) -> None:
        """Drive the sensor; defaults to dead-on resonance."""
        target = freq_hz if freq_hz is not None else self.accel.resonant_hz
        self.accel.acoustic_inject(amplitude, target)
        self.active = True

    def effectiveness(self) -> float:
        """Fraction of the amplitude reaching the output (resonance gain)."""
        return self.accel.injection_gain()

    def stop(self) -> None:
        self.accel.acoustic_inject(0.0, 0.0)
        self.active = False
