"""CAN frame injection and targeted spoofing.

Injection is the bread-and-butter attack mode once any bus access exists
(compromised ECU, OBD dongle, telematics unit): the attacker transmits
frames with chosen ids and payloads.  CAN offers no sender authentication,
so receivers act on them.  :class:`SpoofAttack` is the targeted variant --
forging one specific id (e.g. the engine-speed frame) at a rate high
enough to out-vote the legitimate sender in receivers' last-write-wins
signal caches.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.ivn.canbus import CanBus, CanNode
from repro.ivn.frame import CanFrame
from repro.sim import Simulator


class InjectionAttack:
    """Injects arbitrary frames at a fixed rate from an attacker node."""

    def __init__(
        self,
        sim: Simulator,
        bus: CanBus,
        frame_factory: Callable[[int], CanFrame],
        rate_hz: float,
        node_name: str = "attacker",
    ) -> None:
        if rate_hz <= 0:
            raise ValueError("rate must be positive")
        self.sim = sim
        self.node: CanNode = bus.nodes.get(node_name) or bus.attach(node_name)
        self.frame_factory = frame_factory
        self.period = 1.0 / rate_hz
        self.active = False
        self.injected = 0
        self.started_at: Optional[float] = None
        self.stopped_at: Optional[float] = None
        self.injected_times: List[float] = []

    def start(self) -> None:
        if self.active:
            return
        self.active = True
        self.started_at = self.sim.now
        self.sim.schedule(0.0, self._tick)

    def stop(self) -> None:
        self.active = False
        self.stopped_at = self.sim.now

    def _tick(self) -> None:
        if not self.active:
            return
        frame = self.frame_factory(self.injected)
        self.node.send(frame)
        self.injected += 1
        self.injected_times.append(self.sim.now)
        self.sim.schedule(self.period, self._tick)

    def was_active_at(self, time: float) -> bool:
        """Ground-truth labelling for IDS scoring."""
        if self.started_at is None or time < self.started_at:
            return False
        return self.stopped_at is None or time <= self.stopped_at


class SpoofAttack(InjectionAttack):
    """Forges one specific id with an attacker-chosen payload."""

    def __init__(
        self,
        sim: Simulator,
        bus: CanBus,
        target_id: int,
        payload: bytes,
        rate_hz: float,
        node_name: str = "attacker",
    ) -> None:
        self.target_id = target_id
        self.payload = payload
        super().__init__(
            sim, bus,
            frame_factory=lambda seq: CanFrame(target_id, payload),
            rate_hz=rate_hz, node_name=node_name,
        )
