"""Cryptographic primitives, implemented from scratch.

The paper's security architecture leans on hardware crypto (SHE on the
MCU/MPU side, IEEE 1609.2 ECDSA on the V2X side).  This package provides the
full stack with **no external dependencies** so the rest of the framework can
model those blocks functionally:

- :mod:`repro.crypto.aes` -- AES-128/192/256 block cipher, plus a leakage
  hook and a first-order masked variant for side-channel experiments.
- :mod:`repro.crypto.modes` -- CBC and CTR modes.
- :mod:`repro.crypto.cmac` -- AES-CMAC (NIST SP 800-38B), the SHE MAC.
- :mod:`repro.crypto.sha256` -- SHA-256 (FIPS 180-4).
- :mod:`repro.crypto.hmac_mod` -- HMAC-SHA256 (RFC 2104).
- :mod:`repro.crypto.kdf` -- HKDF and the SHE Miyaguchi-Preneel KDF.
- :mod:`repro.crypto.ecdsa` -- ECDSA over NIST P-256 with deterministic
  (RFC 6979-style) nonces, the IEEE 1609.2 signature suite.
- :mod:`repro.crypto.drbg` -- HMAC-DRBG (SP 800-90A) for reproducible
  "randomness" inside simulations.

These implementations favour clarity over speed and are **not** intended for
production use outside this simulator.
"""

from repro.crypto.aes import AES, MaskedAES
from repro.crypto.cmac import aes_cmac, cmac_verify
from repro.crypto.drbg import HmacDrbg
from repro.crypto.ecdsa import (
    EcdsaKeyPair,
    EcdsaSignature,
    P256,
    ecdsa_sign,
    ecdsa_verify,
)
from repro.crypto.hmac_mod import hmac_sha256
from repro.crypto.kdf import hkdf, she_kdf, SHE_KEY_UPDATE_ENC_C, SHE_KEY_UPDATE_MAC_C
from repro.crypto.modes import cbc_decrypt, cbc_encrypt, ctr_keystream, ctr_xcrypt
from repro.crypto.sha256 import sha256
from repro.crypto.util import constant_time_eq, xor_bytes

__all__ = [
    "AES",
    "MaskedAES",
    "aes_cmac",
    "cmac_verify",
    "HmacDrbg",
    "EcdsaKeyPair",
    "EcdsaSignature",
    "P256",
    "ecdsa_sign",
    "ecdsa_verify",
    "hmac_sha256",
    "hkdf",
    "she_kdf",
    "SHE_KEY_UPDATE_ENC_C",
    "SHE_KEY_UPDATE_MAC_C",
    "cbc_encrypt",
    "cbc_decrypt",
    "ctr_keystream",
    "ctr_xcrypt",
    "sha256",
    "constant_time_eq",
    "xor_bytes",
]
