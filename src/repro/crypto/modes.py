"""Block-cipher modes of operation: CBC and CTR."""

from __future__ import annotations

from repro.crypto.aes import AES
from repro.crypto.util import pkcs7_pad, pkcs7_unpad, xor_bytes


def cbc_encrypt(key: bytes, iv: bytes, plaintext: bytes) -> bytes:
    """AES-CBC with PKCS#7 padding."""
    if len(iv) != 16:
        raise ValueError("IV must be 16 bytes")
    aes = AES(key)
    data = pkcs7_pad(plaintext)
    out = bytearray()
    prev = iv
    for i in range(0, len(data), 16):
        block = aes.encrypt_block(xor_bytes(data[i : i + 16], prev))
        out.extend(block)
        prev = block
    return bytes(out)


def cbc_decrypt(key: bytes, iv: bytes, ciphertext: bytes) -> bytes:
    """AES-CBC decryption with PKCS#7 unpadding."""
    if len(iv) != 16:
        raise ValueError("IV must be 16 bytes")
    if len(ciphertext) == 0 or len(ciphertext) % 16:
        raise ValueError("ciphertext length must be a positive multiple of 16")
    aes = AES(key)
    out = bytearray()
    prev = iv
    for i in range(0, len(ciphertext), 16):
        block = ciphertext[i : i + 16]
        out.extend(xor_bytes(aes.decrypt_block(block), prev))
        prev = block
    return pkcs7_unpad(bytes(out))


def ctr_keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """Generate ``length`` bytes of AES-CTR keystream.

    ``nonce`` is up to 16 bytes; it is left-aligned into the counter block
    and the remaining low-order bytes hold the big-endian block counter.
    """
    if len(nonce) > 16:
        raise ValueError("nonce must be at most 16 bytes")
    aes = AES(key)
    out = bytearray()
    counter = 0
    counter_width = 16 - len(nonce)
    if counter_width == 0:
        base = int.from_bytes(nonce, "big")
        while len(out) < length:
            block = ((base + counter) % (1 << 128)).to_bytes(16, "big")
            out.extend(aes.encrypt_block(block))
            counter += 1
    else:
        while len(out) < length:
            block = nonce + counter.to_bytes(counter_width, "big")
            out.extend(aes.encrypt_block(block))
            counter += 1
    return bytes(out[:length])


def ctr_xcrypt(key: bytes, nonce: bytes, data: bytes) -> bytes:
    """Encrypt or decrypt (CTR is an involution) ``data``."""
    return xor_bytes(data, ctr_keystream(key, nonce, len(data)))
