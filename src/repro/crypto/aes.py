"""AES block cipher (FIPS 197) with a side-channel leakage hook.

Two variants are provided:

- :class:`AES` -- the straightforward implementation.  ``encrypt_block``
  accepts an optional ``leak`` callback that receives every first-round
  S-box output byte; the :mod:`repro.physical.emissions` model converts
  those intermediates into Hamming-weight power traces, which the E4
  side-channel experiment attacks with CPA.
- :class:`MaskedAES` -- a first-order boolean-masked implementation.  The
  S-box stage operates on masked data, so the leaked intermediates are
  uniformly randomised and first-order CPA fails (the countermeasure the
  paper's "secure processing" layer calls for).

Performance note: this is pure Python, roughly 10^4 blocks/s -- plenty for
frame-level simulation, far too slow for real traffic.  That is by design;
see DESIGN.md section 4.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional

LeakFn = Callable[[int, int, int], None]
"""Leakage callback ``leak(round_index, byte_index, intermediate_value)``."""

# ---------------------------------------------------------------------------
# Tables
# ---------------------------------------------------------------------------


def _build_sbox() -> tuple[List[int], List[int]]:
    """Construct the AES S-box from GF(2^8) inversion + affine map."""
    # Multiplicative inverse table via exp/log over generator 3.
    exp = [0] * 512
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        # multiply by 3 (generator) in GF(2^8) mod x^8+x^4+x^3+x+1
        x ^= (x << 1) ^ (0x11B if x & 0x80 else 0)
        x &= 0xFF
    for i in range(255, 512):
        exp[i] = exp[i - 255]

    sbox = [0] * 256
    for value in range(256):
        inv = 0 if value == 0 else exp[255 - log[value]]
        # affine transformation
        out = inv
        for shift in (1, 2, 3, 4):
            out ^= ((inv << shift) | (inv >> (8 - shift))) & 0xFF
        sbox[value] = out ^ 0x63
    inv_sbox = [0] * 256
    for i, s in enumerate(sbox):
        inv_sbox[s] = i
    return sbox, inv_sbox


SBOX, INV_SBOX = _build_sbox()

RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36, 0x6C, 0xD8, 0xAB, 0x4D]


def _xtime(a: int) -> int:
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


def _gmul(a: int, b: int) -> int:
    """GF(2^8) multiplication."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


class AES:
    """AES-128/192/256 in ECB (single block) form.

    Modes of operation live in :mod:`repro.crypto.modes`.

    >>> key = bytes(range(16))
    >>> aes = AES(key)
    >>> pt = bytes(16)
    >>> aes.decrypt_block(aes.encrypt_block(pt)) == pt
    True
    """

    def __init__(self, key: bytes) -> None:
        if len(key) not in (16, 24, 32):
            raise ValueError(f"AES key must be 16/24/32 bytes, got {len(key)}")
        self.key = bytes(key)
        self.rounds = {16: 10, 24: 12, 32: 14}[len(key)]
        self._round_keys = self._expand_key(key)

    # ------------------------------------------------------------------
    # Key schedule
    # ------------------------------------------------------------------
    def _expand_key(self, key: bytes) -> List[List[int]]:
        nk = len(key) // 4
        nr = self.rounds
        words: List[List[int]] = [list(key[4 * i : 4 * i + 4]) for i in range(nk)]
        for i in range(nk, 4 * (nr + 1)):
            temp = list(words[i - 1])
            if i % nk == 0:
                temp = temp[1:] + temp[:1]  # RotWord
                temp = [SBOX[b] for b in temp]  # SubWord
                temp[0] ^= RCON[i // nk - 1]
            elif nk > 6 and i % nk == 4:
                temp = [SBOX[b] for b in temp]
            words.append([words[i - nk][j] ^ temp[j] for j in range(4)])
        # Group into 16-byte round keys (flat, column-major like the state).
        round_keys = []
        for r in range(nr + 1):
            rk = []
            for c in range(4):
                rk.extend(words[4 * r + c])
            round_keys.append(rk)
        return round_keys

    # ------------------------------------------------------------------
    # Round primitives -- state is a flat list of 16 bytes, column-major:
    # state[4*c + r] is row r, column c.
    # ------------------------------------------------------------------
    @staticmethod
    def _shift_rows(s: List[int]) -> List[int]:
        return [
            s[0], s[5], s[10], s[15],
            s[4], s[9], s[14], s[3],
            s[8], s[13], s[2], s[7],
            s[12], s[1], s[6], s[11],
        ]

    @staticmethod
    def _inv_shift_rows(s: List[int]) -> List[int]:
        return [
            s[0], s[13], s[10], s[7],
            s[4], s[1], s[14], s[11],
            s[8], s[5], s[2], s[15],
            s[12], s[9], s[6], s[3],
        ]

    @staticmethod
    def _mix_columns(s: List[int]) -> List[int]:
        out = [0] * 16
        for c in range(4):
            a0, a1, a2, a3 = s[4 * c : 4 * c + 4]
            out[4 * c + 0] = _xtime(a0) ^ (_xtime(a1) ^ a1) ^ a2 ^ a3
            out[4 * c + 1] = a0 ^ _xtime(a1) ^ (_xtime(a2) ^ a2) ^ a3
            out[4 * c + 2] = a0 ^ a1 ^ _xtime(a2) ^ (_xtime(a3) ^ a3)
            out[4 * c + 3] = (_xtime(a0) ^ a0) ^ a1 ^ a2 ^ _xtime(a3)
        return out

    @staticmethod
    def _inv_mix_columns(s: List[int]) -> List[int]:
        out = [0] * 16
        for c in range(4):
            a0, a1, a2, a3 = s[4 * c : 4 * c + 4]
            out[4 * c + 0] = _gmul(a0, 14) ^ _gmul(a1, 11) ^ _gmul(a2, 13) ^ _gmul(a3, 9)
            out[4 * c + 1] = _gmul(a0, 9) ^ _gmul(a1, 14) ^ _gmul(a2, 11) ^ _gmul(a3, 13)
            out[4 * c + 2] = _gmul(a0, 13) ^ _gmul(a1, 9) ^ _gmul(a2, 14) ^ _gmul(a3, 11)
            out[4 * c + 3] = _gmul(a0, 11) ^ _gmul(a1, 13) ^ _gmul(a2, 9) ^ _gmul(a3, 14)
        return out

    def _sub_bytes(self, s: List[int], round_index: int, leak: Optional[LeakFn]) -> List[int]:
        out = [SBOX[b] for b in s]
        if leak is not None and round_index == 1:
            for i, v in enumerate(out):
                leak(round_index, i, v)
        return out

    # ------------------------------------------------------------------
    # Block operations
    # ------------------------------------------------------------------
    def encrypt_block(self, block: bytes, leak: Optional[LeakFn] = None) -> bytes:
        """Encrypt one 16-byte block; optionally leak round-1 S-box bytes."""
        if len(block) != 16:
            raise ValueError("AES block must be 16 bytes")
        state = [block[i] ^ self._round_keys[0][i] for i in range(16)]
        for rnd in range(1, self.rounds):
            state = self._sub_bytes(state, rnd, leak)
            state = self._shift_rows(state)
            state = self._mix_columns(state)
            state = [state[i] ^ self._round_keys[rnd][i] for i in range(16)]
        state = self._sub_bytes(state, self.rounds, leak)
        state = self._shift_rows(state)
        state = [state[i] ^ self._round_keys[self.rounds][i] for i in range(16)]
        return bytes(state)

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt one 16-byte block."""
        if len(block) != 16:
            raise ValueError("AES block must be 16 bytes")
        state = [block[i] ^ self._round_keys[self.rounds][i] for i in range(16)]
        state = self._inv_shift_rows(state)
        state = [INV_SBOX[b] for b in state]
        for rnd in range(self.rounds - 1, 0, -1):
            state = [state[i] ^ self._round_keys[rnd][i] for i in range(16)]
            state = self._inv_mix_columns(state)
            state = self._inv_shift_rows(state)
            state = [INV_SBOX[b] for b in state]
        state = [state[i] ^ self._round_keys[0][i] for i in range(16)]
        return bytes(state)


class MaskedAES(AES):
    """First-order boolean-masked AES (side-channel countermeasure).

    Each encryption draws a fresh random byte mask per state byte; SubBytes
    uses a remasked S-box table so the observable intermediate (what the
    ``leak`` callback sees) is ``SBOX[x] ^ mask_out`` with uniformly random
    ``mask_out``, decorrelating first-order power analysis from the key.

    Masking is applied through the linear layers by maintaining the mask
    state in parallel; the final output is unmasked, so ciphertexts are
    identical to plain :class:`AES` (verified by the test suite).
    """

    def __init__(self, key: bytes, rng: Optional[random.Random] = None) -> None:
        super().__init__(key)
        self._rng = rng if rng is not None else random.Random()

    def encrypt_block(self, block: bytes, leak: Optional[LeakFn] = None) -> bytes:
        if len(block) != 16:
            raise ValueError("AES block must be 16 bytes")
        rng = self._rng
        # Input mask
        mask = [rng.randrange(256) for _ in range(16)]
        state = [block[i] ^ self._round_keys[0][i] ^ mask[i] for i in range(16)]
        for rnd in range(1, self.rounds):
            state, mask = self._masked_sub_bytes(state, mask, rnd, leak)
            state = self._shift_rows(state)
            mask = self._shift_rows(mask)
            state = self._mix_columns(state)
            mask = self._mix_columns(mask)
            state = [state[i] ^ self._round_keys[rnd][i] for i in range(16)]
        state, mask = self._masked_sub_bytes(state, mask, self.rounds, leak)
        state = self._shift_rows(state)
        mask = self._shift_rows(mask)
        state = [state[i] ^ self._round_keys[self.rounds][i] ^ mask[i] for i in range(16)]
        return bytes(state)

    def _masked_sub_bytes(
        self,
        state: List[int],
        mask: List[int],
        round_index: int,
        leak: Optional[LeakFn],
    ) -> tuple[List[int], List[int]]:
        rng = self._rng
        out_state = [0] * 16
        out_mask = [0] * 16
        for i in range(16):
            m_in = mask[i]
            m_out = rng.randrange(256)
            # Masked S-box lookup: value = SBOX[x] ^ m_out, where x is the
            # true (unmasked) byte.  The table walk itself is what a real
            # masked implementation precomputes per (m_in, m_out) pair.
            true_byte = state[i] ^ m_in
            masked_value = SBOX[true_byte] ^ m_out
            out_state[i] = masked_value
            out_mask[i] = m_out
            if leak is not None and round_index == 1:
                leak(round_index, i, masked_value)
        return out_state, out_mask
