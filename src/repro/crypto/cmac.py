"""AES-CMAC (NIST SP 800-38B).

CMAC is the MAC mandated by the SHE specification and the workhorse of the
framework: firmware authentication (secure boot), CAN message authentication
(E3), and SHE key-update protocol tags all use it.
"""

from __future__ import annotations

from repro.crypto.aes import AES
from repro.crypto.util import constant_time_eq, xor_bytes

_RB = 0x87  # constant for 128-bit block subkey derivation


def _left_shift_one(block: bytes) -> bytes:
    value = int.from_bytes(block, "big")
    shifted = (value << 1) & ((1 << 128) - 1)
    return shifted.to_bytes(16, "big")


def _derive_subkeys(aes: AES) -> tuple[bytes, bytes]:
    l = aes.encrypt_block(bytes(16))
    k1 = _left_shift_one(l)
    if l[0] & 0x80:
        k1 = k1[:-1] + bytes([k1[-1] ^ _RB])
    k2 = _left_shift_one(k1)
    if k1[0] & 0x80:
        k2 = k2[:-1] + bytes([k2[-1] ^ _RB])
    return k1, k2


def aes_cmac(key: bytes, message: bytes, tag_len: int = 16) -> bytes:
    """Compute AES-CMAC over ``message``; optionally truncate to ``tag_len``.

    Truncation (to 2/4/8 bytes) is how CAN authentication schemes fit a tag
    into an 8-byte frame -- the security-vs-bus-load knob of experiment E3.

    >>> key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    >>> aes_cmac(key, b"").hex()
    'bb1d6929e95937287fa37d129b756746'
    """
    if not 1 <= tag_len <= 16:
        raise ValueError("tag_len must be in 1..16")
    aes = AES(key)
    k1, k2 = _derive_subkeys(aes)

    n_blocks = max(1, (len(message) + 15) // 16)
    complete_last = len(message) > 0 and len(message) % 16 == 0

    if complete_last:
        last = xor_bytes(message[-16:], k1)
    else:
        tail = message[16 * (n_blocks - 1):]
        padded = tail + b"\x80" + bytes(15 - len(tail))
        last = xor_bytes(padded, k2)

    x = bytes(16)
    for i in range(n_blocks - 1):
        x = aes.encrypt_block(xor_bytes(x, message[16 * i : 16 * i + 16]))
    tag = aes.encrypt_block(xor_bytes(x, last))
    return tag[:tag_len]


def cmac_verify(key: bytes, message: bytes, tag: bytes) -> bool:
    """Constant-time CMAC verification against a possibly truncated tag."""
    expected = aes_cmac(key, message, tag_len=len(tag))
    return constant_time_eq(expected, tag)
