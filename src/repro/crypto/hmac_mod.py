"""HMAC-SHA256 (RFC 2104)."""

from __future__ import annotations

from repro.crypto.sha256 import sha256

_BLOCK_SIZE = 64


def hmac_sha256(key: bytes, message: bytes) -> bytes:
    """Return the 32-byte HMAC-SHA256 tag.

    >>> hmac_sha256(b"key", b"The quick brown fox jumps over the lazy dog").hex()
    'f7bc83f430538424b13298e6aa6fb143ef4d59a14946175997479dbc2d1a3cd8'
    """
    if len(key) > _BLOCK_SIZE:
        key = sha256(key)
    key = key + b"\x00" * (_BLOCK_SIZE - len(key))
    o_pad = bytes(b ^ 0x5C for b in key)
    i_pad = bytes(b ^ 0x36 for b in key)
    return sha256(o_pad + sha256(i_pad + message))
