"""HMAC-DRBG (NIST SP 800-90A) over HMAC-SHA256.

Simulations need cryptographic-quality randomness that is nevertheless
*reproducible* for a fixed scenario seed; HMAC-DRBG seeded from the scenario
RNG provides exactly that.  It is also reused as the RFC 6979-style nonce
generator inside :mod:`repro.crypto.ecdsa`.
"""

from __future__ import annotations

from repro.crypto.hmac_mod import hmac_sha256


class HmacDrbg:
    """Deterministic random bit generator.

    >>> drbg = HmacDrbg(b"seed material")
    >>> a = drbg.generate(16)
    >>> b = drbg.generate(16)
    >>> a != b and len(a) == 16
    True
    """

    def __init__(self, seed: bytes, personalization: bytes = b"") -> None:
        self._k = bytes(32)
        self._v = b"\x01" * 32
        self._update(seed + personalization)
        self.reseed_counter = 1

    def _update(self, provided: bytes = b"") -> None:
        self._k = hmac_sha256(self._k, self._v + b"\x00" + provided)
        self._v = hmac_sha256(self._k, self._v)
        if provided:
            self._k = hmac_sha256(self._k, self._v + b"\x01" + provided)
            self._v = hmac_sha256(self._k, self._v)

    def reseed(self, entropy: bytes) -> None:
        """Mix fresh entropy into the state."""
        self._update(entropy)
        self.reseed_counter = 1

    def generate(self, n_bytes: int) -> bytes:
        """Produce ``n_bytes`` of output."""
        if n_bytes < 0:
            raise ValueError("n_bytes must be non-negative")
        out = b""
        while len(out) < n_bytes:
            self._v = hmac_sha256(self._k, self._v)
            out += self._v
        self._update()
        self.reseed_counter += 1
        return out[:n_bytes]

    def randint_below(self, bound: int) -> int:
        """Uniform integer in ``[0, bound)`` by rejection sampling."""
        if bound <= 0:
            raise ValueError("bound must be positive")
        n_bytes = (bound.bit_length() + 7) // 8
        while True:
            candidate = int.from_bytes(self.generate(n_bytes), "big")
            if candidate < bound:
                return candidate
