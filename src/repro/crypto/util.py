"""Small shared helpers for the crypto package."""

from __future__ import annotations


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings."""
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")
    return bytes(x ^ y for x, y in zip(a, b))


def constant_time_eq(a: bytes, b: bytes) -> bool:
    """Compare two byte strings without data-dependent early exit.

    Used by MAC/tag verification paths; the simulator models timing side
    channels, so verification code must not leak the mismatch position.
    """
    if len(a) != len(b):
        return False
    acc = 0
    for x, y in zip(a, b):
        acc |= x ^ y
    return acc == 0


def int_to_bytes(value: int, length: int) -> bytes:
    """Big-endian fixed-width encoding."""
    return value.to_bytes(length, "big")


def bytes_to_int(data: bytes) -> int:
    """Big-endian decoding."""
    return int.from_bytes(data, "big")


def pkcs7_pad(data: bytes, block_size: int = 16) -> bytes:
    """PKCS#7 padding."""
    pad = block_size - (len(data) % block_size)
    return data + bytes([pad] * pad)


def pkcs7_unpad(data: bytes, block_size: int = 16) -> bytes:
    """Strip and validate PKCS#7 padding."""
    if not data or len(data) % block_size:
        raise ValueError("invalid padded length")
    pad = data[-1]
    if pad < 1 or pad > block_size or data[-pad:] != bytes([pad] * pad):
        raise ValueError("invalid padding")
    return data[:-pad]
