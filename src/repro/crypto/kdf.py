"""Key derivation: HKDF (RFC 5869) and the SHE compression KDF.

The SHE specification derives its internal keys with a Miyaguchi-Preneel
compression function built on AES-128 ("AES-MP").  We implement that shape
faithfully because the SHE model in :mod:`repro.ecu.she` uses it for the
key-update protocol, including the well-known update constants.
"""

from __future__ import annotations

from repro.crypto.aes import AES
from repro.crypto.hmac_mod import hmac_sha256
from repro.crypto.util import xor_bytes

# SHE key-update constants (the values the spec feeds into the KDF to
# separate encryption and MAC derivation domains).
SHE_KEY_UPDATE_ENC_C = bytes.fromhex("010153484500800000000000000000b0")
SHE_KEY_UPDATE_MAC_C = bytes.fromhex("010253484500800000000000000000b0")


def hkdf(ikm: bytes, length: int, salt: bytes = b"", info: bytes = b"") -> bytes:
    """HKDF-SHA256 extract-and-expand."""
    if length <= 0 or length > 255 * 32:
        raise ValueError("invalid output length")
    prk = hmac_sha256(salt if salt else bytes(32), ikm)
    okm = b""
    block = b""
    counter = 1
    while len(okm) < length:
        block = hmac_sha256(prk, block + info + bytes([counter]))
        okm += block
        counter += 1
    return okm[:length]


def _aes_mp_compress(state: bytes, block: bytes) -> bytes:
    """One Miyaguchi-Preneel step: ``E_state(block) XOR block XOR state``."""
    return xor_bytes(xor_bytes(AES(state).encrypt_block(block), block), state)


def she_kdf(key: bytes, constant: bytes) -> bytes:
    """SHE key derivation: AES-MP compression over ``key || constant``.

    Both inputs must be 16 bytes; the output is a 16-byte derived key.

    >>> k = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
    >>> she_kdf(k, SHE_KEY_UPDATE_ENC_C) != she_kdf(k, SHE_KEY_UPDATE_MAC_C)
    True
    """
    if len(key) != 16 or len(constant) != 16:
        raise ValueError("she_kdf operates on 16-byte inputs")
    state = bytes(16)
    state = _aes_mp_compress(state, key)
    state = _aes_mp_compress(state, constant)
    return state
