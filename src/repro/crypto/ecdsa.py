"""ECDSA over NIST P-256, the IEEE 1609.2 signature suite.

Implements short-Weierstrass point arithmetic in Jacobian coordinates,
deterministic per-message nonces (RFC 6979 flavour, via HMAC-DRBG keyed on
the private key and message hash), signing, and verification.  V2X message
authentication (:mod:`repro.v2x`) and OTA metadata roles (:mod:`repro.ota`)
are built on this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.crypto.drbg import HmacDrbg
from repro.crypto.sha256 import sha256


@dataclass(frozen=True)
class Curve:
    """Short Weierstrass curve ``y^2 = x^3 + a*x + b`` over GF(p)."""

    name: str
    p: int
    a: int
    b: int
    gx: int
    gy: int
    n: int  # group order

    @property
    def generator(self) -> Tuple[int, int]:
        return (self.gx, self.gy)

    def is_on_curve(self, point: Optional[Tuple[int, int]]) -> bool:
        """Check curve membership (``None`` is the point at infinity)."""
        if point is None:
            return True
        x, y = point
        return (y * y - (x * x * x + self.a * x + self.b)) % self.p == 0


P256 = Curve(
    name="P-256",
    p=0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFF,
    a=0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFC,
    b=0x5AC635D8AA3A93E7B3EBBD55769886BC651D06B0CC53B0F63BCE3C3E27D2604B,
    gx=0x6B17D1F2E12C4247F8BCE6E563A440F277037D812DEB33A0F4A13945D898C296,
    gy=0x4FE342E2FE1A7F9B8EE7EB4A7C0F9E162BCE33576B315ECECBB6406837BF51F5,
    n=0xFFFFFFFF00000000FFFFFFFFFFFFFFFFBCE6FAADA7179E84F3B9CAC2FC632551,
)

_Jacobian = Tuple[int, int, int]
_INFINITY: _Jacobian = (1, 1, 0)


def _to_jacobian(point: Optional[Tuple[int, int]]) -> _Jacobian:
    if point is None:
        return _INFINITY
    return (point[0], point[1], 1)


def _from_jacobian(point: _Jacobian, curve: Curve) -> Optional[Tuple[int, int]]:
    x, y, z = point
    if z == 0:
        return None
    z_inv = pow(z, curve.p - 2, curve.p)
    z2 = (z_inv * z_inv) % curve.p
    return ((x * z2) % curve.p, (y * z2 * z_inv) % curve.p)


def _jacobian_double(point: _Jacobian, curve: Curve) -> _Jacobian:
    x, y, z = point
    p = curve.p
    if z == 0 or y == 0:
        return _INFINITY
    ysq = (y * y) % p
    s = (4 * x * ysq) % p
    m = (3 * x * x + curve.a * pow(z, 4, p)) % p
    nx = (m * m - 2 * s) % p
    ny = (m * (s - nx) - 8 * ysq * ysq) % p
    nz = (2 * y * z) % p
    return (nx, ny, nz)


def _jacobian_add(p1: _Jacobian, p2: _Jacobian, curve: Curve) -> _Jacobian:
    p = curve.p
    if p1[2] == 0:
        return p2
    if p2[2] == 0:
        return p1
    x1, y1, z1 = p1
    x2, y2, z2 = p2
    z1z1 = (z1 * z1) % p
    z2z2 = (z2 * z2) % p
    u1 = (x1 * z2z2) % p
    u2 = (x2 * z1z1) % p
    s1 = (y1 * z2 * z2z2) % p
    s2 = (y2 * z1 * z1z1) % p
    if u1 == u2:
        if s1 != s2:
            return _INFINITY
        return _jacobian_double(p1, curve)
    h = (u2 - u1) % p
    r = (s2 - s1) % p
    h2 = (h * h) % p
    h3 = (h * h2) % p
    u1h2 = (u1 * h2) % p
    nx = (r * r - h3 - 2 * u1h2) % p
    ny = (r * (u1h2 - nx) - s1 * h3) % p
    nz = (h * z1 * z2) % p
    return (nx, ny, nz)


def scalar_mult(k: int, point: Optional[Tuple[int, int]], curve: Curve = P256) -> Optional[Tuple[int, int]]:
    """Compute ``k * point`` (double-and-add on Jacobian coordinates)."""
    if point is None or k % curve.n == 0:
        return None
    k %= curve.n
    result = _INFINITY
    addend = _to_jacobian(point)
    while k:
        if k & 1:
            result = _jacobian_add(result, addend, curve)
        addend = _jacobian_double(addend, curve)
        k >>= 1
    return _from_jacobian(result, curve)


def point_add(
    a: Optional[Tuple[int, int]],
    b: Optional[Tuple[int, int]],
    curve: Curve = P256,
) -> Optional[Tuple[int, int]]:
    """Affine point addition."""
    return _from_jacobian(_jacobian_add(_to_jacobian(a), _to_jacobian(b), curve), curve)


@dataclass(frozen=True)
class EcdsaSignature:
    """An (r, s) signature pair."""

    r: int
    s: int

    def to_bytes(self) -> bytes:
        """Fixed-width 64-byte encoding (r || s)."""
        return self.r.to_bytes(32, "big") + self.s.to_bytes(32, "big")

    @classmethod
    def from_bytes(cls, data: bytes) -> "EcdsaSignature":
        if len(data) != 64:
            raise ValueError("signature must be 64 bytes")
        return cls(int.from_bytes(data[:32], "big"), int.from_bytes(data[32:], "big"))


@dataclass(frozen=True)
class EcdsaKeyPair:
    """A private scalar and its public point."""

    private: int
    public: Tuple[int, int]
    curve: Curve = P256

    @classmethod
    def generate(cls, drbg: HmacDrbg, curve: Curve = P256) -> "EcdsaKeyPair":
        """Generate a key pair from a DRBG (reproducible for a fixed seed)."""
        private = 0
        while not 1 <= private < curve.n:
            private = drbg.randint_below(curve.n)
        public = scalar_mult(private, curve.generator, curve)
        assert public is not None
        return cls(private, public, curve)

    def public_bytes(self) -> bytes:
        """Uncompressed public point encoding (0x04 || x || y)."""
        return b"\x04" + self.public[0].to_bytes(32, "big") + self.public[1].to_bytes(32, "big")


def _hash_to_int(message: bytes, curve: Curve) -> int:
    digest = sha256(message)
    e = int.from_bytes(digest, "big")
    # Left-truncate to the order's bit length (P-256: no truncation needed).
    excess = 8 * len(digest) - curve.n.bit_length()
    if excess > 0:
        e >>= excess
    return e


def ecdsa_sign(private: int, message: bytes, curve: Curve = P256) -> EcdsaSignature:
    """Sign ``message`` with a deterministic nonce.

    The nonce DRBG is keyed on (private key, message hash), giving RFC
    6979-style determinism: same key + message => same signature, and no
    dependence on ambient randomness (crucial for reproducible simulations).
    """
    if not 1 <= private < curve.n:
        raise ValueError("private key out of range")
    z = _hash_to_int(message, curve)
    nonce_drbg = HmacDrbg(private.to_bytes(32, "big") + sha256(message))
    while True:
        k = nonce_drbg.randint_below(curve.n)
        if k == 0:
            continue
        point = scalar_mult(k, curve.generator, curve)
        assert point is not None
        r = point[0] % curve.n
        if r == 0:
            continue
        k_inv = pow(k, curve.n - 2, curve.n)
        s = (k_inv * (z + r * private)) % curve.n
        if s == 0:
            continue
        return EcdsaSignature(r, s)


def ecdsa_verify(
    public: Tuple[int, int],
    message: bytes,
    signature: EcdsaSignature,
    curve: Curve = P256,
) -> bool:
    """Verify an ECDSA signature.  Returns ``False`` on any malformation."""
    r, s = signature.r, signature.s
    if not (1 <= r < curve.n and 1 <= s < curve.n):
        return False
    if not curve.is_on_curve(public) or public is None:
        return False
    z = _hash_to_int(message, curve)
    s_inv = pow(s, curve.n - 2, curve.n)
    u1 = (z * s_inv) % curve.n
    u2 = (r * s_inv) % curve.n
    point = point_add(
        scalar_mult(u1, curve.generator, curve),
        scalar_mult(u2, public, curve),
        curve,
    )
    if point is None:
        return False
    return point[0] % curve.n == r
